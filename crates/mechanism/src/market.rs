//! The DLS-BL market: agents, allocation, payments, utilities.

use dls_dlt::{
    finish_times_into, makespan, optimal, BusParams, ChainState, ParamError, SystemModel,
};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One strategic processor: its private type, its report, and how it
/// actually executes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AgentSpec {
    /// True unit-processing time `w_i` (private type `t_i`).
    pub true_w: f64,
    /// Reported bid `b_i`.
    pub bid: f64,
    /// Observed execution rate `w̃_i`. Physically constrained to
    /// `w̃_i ≥ w_i` — a processor can stall but not overclock.
    pub exec_w: f64,
}

impl AgentSpec {
    /// A truthful, fully compliant agent: `b_i = w̃_i = w_i`.
    pub fn truthful(w: f64) -> Self {
        AgentSpec {
            true_w: w,
            bid: w,
            exec_w: w,
        }
    }

    /// An agent that misreports its capacity by `factor` (`> 1` feigns
    /// slowness, `< 1` feigns speed) but executes at its true rate —
    /// unless the bid claims it is *slower* than it is, in which case it
    /// must stall to match its own claim or run at full speed; we model the
    /// pure misreport (executes at true speed).
    pub fn misreporting(w: f64, factor: f64) -> Self {
        AgentSpec {
            true_w: w,
            bid: w * factor,
            exec_w: w,
        }
    }

    /// A truthful bidder that then executes `factor ≥ 1` slower than bid.
    pub fn slacking(w: f64, factor: f64) -> Self {
        AgentSpec {
            true_w: w,
            bid: w,
            exec_w: w * factor,
        }
    }

    /// `true` iff the agent reports truthfully and executes at full speed.
    pub fn is_compliant(&self) -> bool {
        self.bid == self.true_w && self.exec_w == self.true_w
    }
}

/// Invalid market specification.
#[derive(Debug, Clone, PartialEq)]
pub enum MarketError {
    /// The underlying DLT parameters were invalid.
    Params(ParamError),
    /// An agent's `exec_w` violates the physical constraint `w̃_i ≥ w_i`.
    Overclocked {
        /// Offending agent (0-based).
        index: usize,
    },
    /// A non-finite or non-positive value in an agent spec.
    InvalidAgent {
        /// Offending agent (0-based).
        index: usize,
    },
}

impl fmt::Display for MarketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarketError::Params(e) => write!(f, "{e}"),
            MarketError::Overclocked { index } => write!(
                f,
                "agent {index}: execution rate faster than true capacity (w̃ < w)"
            ),
            MarketError::InvalidAgent { index } => {
                write!(f, "agent {index}: rates must be finite and positive")
            }
        }
    }
}

impl std::error::Error for MarketError {}

impl From<ParamError> for MarketError {
    fn from(e: ParamError) -> Self {
        MarketError::Params(e)
    }
}

/// Payment handed to one processor, split per Eq. (12).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Payment {
    /// `C_i = α_i·w̃_i` — reimbursement of incurred cost.
    pub compensation: f64,
    /// `B_i = T(α(b_{-i}), b_{-i}) − T(α(b), (b_{-i}, w̃_i))`.
    pub bonus: f64,
}

impl Payment {
    /// Total payment `Q_i = C_i + B_i`.
    pub fn total(&self) -> f64 {
        self.compensation + self.bonus
    }
}

/// A fully specified DLS-BL market instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Market {
    model: SystemModel,
    z: f64,
    agents: Vec<AgentSpec>,
}

impl Market {
    /// Validates and constructs a market.
    pub fn new(
        model: SystemModel,
        z: f64,
        agents: Vec<AgentSpec>,
    ) -> Result<Self, MarketError> {
        for (index, a) in agents.iter().enumerate() {
            let vals = [a.true_w, a.bid, a.exec_w];
            if vals.iter().any(|v| !v.is_finite() || *v <= 0.0) {
                return Err(MarketError::InvalidAgent { index });
            }
            if a.exec_w < a.true_w {
                return Err(MarketError::Overclocked { index });
            }
        }
        // Validate the bid vector as DLT parameters up front.
        let _ = BusParams::new(z, agents.iter().map(|a| a.bid).collect::<Vec<_>>())?;
        Ok(Market { model, z, agents })
    }

    /// The system model.
    pub fn model(&self) -> SystemModel {
        self.model
    }

    /// Bus communication rate.
    pub fn z(&self) -> f64 {
        self.z
    }

    /// The agents.
    pub fn agents(&self) -> &[AgentSpec] {
        &self.agents
    }

    /// Number of agents `m`.
    pub fn m(&self) -> usize {
        self.agents.len()
    }

    /// The bid vector `b`.
    pub fn bids(&self) -> Vec<f64> {
        self.agents.iter().map(|a| a.bid).collect()
    }

    /// The observed execution vector `w̃`.
    pub fn observed(&self) -> Vec<f64> {
        self.agents.iter().map(|a| a.exec_w).collect()
    }

    /// Runs the mechanism: allocation from bids, execution at observed
    /// rates, payments per Eq. (12).
    ///
    /// Single-pass over the `_into` APIs: the bid and observed vectors are
    /// moved into their [`BusParams`] (not cloned), and every intermediate
    /// vector is written exactly once into its output slot.
    pub fn run(&self) -> MechanismOutcome {
        let bid_params = BusParams::new(self.z, self.bids()).expect("validated in new()");
        let mut chain = ChainState::new(self.model, &bid_params);
        let mut alloc = Vec::with_capacity(self.m());
        chain.fractions_into(&mut alloc);

        // Actual session finish times: allocation from bids, but each
        // processor computing at its observed rate.
        let exec_params = BusParams::new(self.z, self.observed()).expect("validated in new()");
        let mut finish = Vec::with_capacity(self.m());
        finish_times_into(self.model, &exec_params, &alloc, &mut finish);
        let actual_makespan = finish.iter().cloned().fold(f64::NEG_INFINITY, f64::max);

        let mut payments = Vec::with_capacity(self.m());
        let mut scratch = PaymentScratch::default();
        compute_payments_into(&mut chain, &alloc, exec_params.w(), &mut scratch, &mut payments);

        MechanismOutcome {
            model: self.model,
            agents: self.agents.clone(),
            alloc,
            finish_times: finish,
            actual_makespan,
            payments,
        }
    }
}

/// Payments for every agent given the bid-derived allocation and the
/// observed execution rates. Exposed separately so the distributed protocol
/// (every processor recomputes `Q` in the Computing Payments phase) can call
/// the *identical* function the trusted mechanism would.
///
/// O(m) total for the whole vector: the first bonus terms come from one
/// shared [`LeaveOneOut`] chain, and the second terms exploit that the
/// mixed schedule `(b_{-i}, w̃_i)` differs from the all-bids schedule in
/// exactly one finish time — `T_i` shifts by `α_i·(w̃_i − b_i)` while every
/// `T_j`, `j ≠ i`, is untouched — so precomputed prefix/suffix maxima of
/// the base finish times answer each makespan in O(1). The pre-optimization
/// Θ(m²) version survives as [`compute_payments_naive`], the oracle the
/// differential tests compare against.
pub fn compute_payments(
    model: SystemModel,
    bid_params: &BusParams,
    alloc: &[f64],
    observed: &[f64],
) -> Vec<Payment> {
    let mut chain = ChainState::new(model, bid_params);
    let mut scratch = PaymentScratch::default();
    let mut out = Vec::with_capacity(bid_params.m());
    compute_payments_into(&mut chain, alloc, observed, &mut scratch, &mut out);
    out
}

/// Reusable intermediate buffers for [`compute_payments_into`]. One
/// instance amortizes every internal vector of the payment computation
/// across evaluations; after the first call of a given market size no
/// further allocation occurs.
#[derive(Debug, Clone, Default)]
pub struct PaymentScratch {
    /// Finish times of the all-bids schedule under the given allocation.
    base: Vec<f64>,
    /// `prefix_max[i] = max(base[..=i])`.
    prefix_max: Vec<f64>,
    /// `suffix_max[i] = max(base[i..])`.
    suffix_max: Vec<f64>,
    /// First bonus terms `T(α(b_{-i}), b_{-i})`.
    t_without: Vec<f64>,
}

/// [`compute_payments`] writing into caller-owned buffers — the
/// allocation-free core shared by [`Market::run`] and the incremental
/// `AuctionEngine`. The bid-side chain products come from `chain` (whose
/// cached prefix/suffix sums answer each leave-one-out query in O(1));
/// results are bit-identical to [`compute_payments`] on the same inputs.
///
/// # Panics
/// Panics if `alloc` or `observed` disagree with `chain.m()` in length.
pub fn compute_payments_into(
    chain: &mut ChainState,
    alloc: &[f64],
    observed: &[f64],
    scratch: &mut PaymentScratch,
    out: &mut Vec<Payment>,
) {
    let m = chain.m();
    assert_eq!(alloc.len(), m);
    assert_eq!(observed.len(), m);
    let model = chain.model();
    finish_times_into(model, chain.params(), alloc, &mut scratch.base);
    // prefix_max[i] = max(base[..=i]); suffix_max[i] = max(base[i..]).
    scratch.prefix_max.clear();
    scratch.prefix_max.extend_from_slice(&scratch.base);
    for i in 1..m {
        scratch.prefix_max[i] = scratch.prefix_max[i].max(scratch.prefix_max[i - 1]);
    }
    scratch.suffix_max.clear();
    scratch.suffix_max.extend_from_slice(&scratch.base);
    for i in (0..m.saturating_sub(1)).rev() {
        scratch.suffix_max[i] = scratch.suffix_max[i].max(scratch.suffix_max[i + 1]);
    }
    // First bonus terms: optimal time of the market without P_i —
    // independent of anything P_i reports or does. A single-agent market
    // has no reduced counterpart; the term is then the time of doing
    // nothing at all, i.e. the whole load unserved. We follow [9] and
    // define it as the solo processing time on an absent market = +∞
    // conceptually; practically the mechanism is only run with m ≥ 2 (the
    // protocol requires peers), so we fall back to the agent's own bid
    // time to keep the math finite.
    scratch.t_without.clear();
    for i in 0..m {
        let solo = alloc[i] * chain.params().w()[i];
        scratch.t_without.push(chain.makespan_without(i).unwrap_or(solo));
    }
    out.clear();
    let w = chain.params().w();
    for i in 0..m {
        let compensation = alloc[i] * observed[i];
        // Second term: the realized schedule, others at their bids, P_i
        // at its observed speed — max of the other finish times and P_i's
        // shifted one.
        let mut t_actual = scratch.base[i] + alloc[i] * (observed[i] - w[i]);
        if i > 0 {
            t_actual = t_actual.max(scratch.prefix_max[i - 1]);
        }
        if i + 1 < m {
            t_actual = t_actual.max(scratch.suffix_max[i + 1]);
        }
        out.push(Payment {
            compensation,
            bonus: scratch.t_without[i] - t_actual,
        });
    }
}

/// The pre-optimization payment computation: per-agent reduced-market
/// re-solve plus a full mixed-schedule makespan, Θ(m) each and Θ(m²) for the
/// vector. Retained as the independent differential-test oracle for
/// [`compute_payments`].
pub fn compute_payments_naive(
    model: SystemModel,
    bid_params: &BusParams,
    alloc: &[f64],
    observed: &[f64],
) -> Vec<Payment> {
    let m = bid_params.m();
    assert_eq!(alloc.len(), m);
    assert_eq!(observed.len(), m);
    (0..m)
        .map(|i| {
            let compensation = alloc[i] * observed[i];
            let t_without = optimal::makespan_without_naive(model, bid_params, i)
                .unwrap_or(alloc[i] * bid_params.w()[i]);
            let mixed = bid_params.with_rate(i, observed[i]);
            let t_actual = makespan(model, &mixed, alloc);
            Payment {
                compensation,
                bonus: t_without - t_actual,
            }
        })
        .collect()
}

/// Everything the mechanism produced for one session.
#[derive(Debug, Clone, PartialEq)]
pub struct MechanismOutcome {
    model: SystemModel,
    agents: Vec<AgentSpec>,
    /// Allocation `α(b)` computed from the bids.
    pub alloc: Vec<f64>,
    /// Realized finish times (allocation from bids, observed speeds).
    pub finish_times: Vec<f64>,
    /// Realized total execution time.
    pub actual_makespan: f64,
    /// Per-agent payments.
    pub payments: Vec<Payment>,
}

impl MechanismOutcome {
    /// Agent `i`'s utility `U_i = Q_i + V_i = C_i + B_i − α_i·w̃_i = B_i`.
    pub fn utility(&self, i: usize) -> f64 {
        let valuation = -self.alloc[i] * self.agents[i].exec_w;
        self.payments[i].total() + valuation
    }

    /// Total amount the user is billed: `Σ Q_i`.
    pub fn user_bill(&self) -> f64 {
        self.payments.iter().map(Payment::total).sum()
    }

    /// The social cost the paper's mechanism minimizes under truthful play:
    /// the realized makespan.
    pub fn social_cost(&self) -> f64 {
        self.actual_makespan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_dlt::ALL_MODELS;

    fn truthful_market(model: SystemModel) -> Market {
        Market::new(
            model,
            0.2,
            vec![
                AgentSpec::truthful(1.0),
                AgentSpec::truthful(2.0),
                AgentSpec::truthful(3.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn validation_rejects_overclocking() {
        let bad = AgentSpec {
            true_w: 2.0,
            bid: 2.0,
            exec_w: 1.5,
        };
        assert!(matches!(
            Market::new(SystemModel::Cp, 0.1, vec![AgentSpec::truthful(1.0), bad]),
            Err(MarketError::Overclocked { index: 1 })
        ));
    }

    #[test]
    fn validation_rejects_nonsense() {
        let bad = AgentSpec {
            true_w: -1.0,
            bid: 1.0,
            exec_w: 1.0,
        };
        assert!(matches!(
            Market::new(SystemModel::Cp, 0.1, vec![bad]),
            Err(MarketError::InvalidAgent { index: 0 })
        ));
        assert!(matches!(
            Market::new(SystemModel::Cp, -0.5, vec![AgentSpec::truthful(1.0)]),
            Err(MarketError::Params(_))
        ));
    }

    #[test]
    fn truthful_utility_equals_bonus() {
        for model in ALL_MODELS {
            let out = truthful_market(model).run();
            for i in 0..3 {
                // U_i = B_i exactly: compensation cancels valuation.
                assert!(
                    (out.utility(i) - out.payments[i].bonus).abs() < 1e-12,
                    "{model} agent {i}"
                );
            }
        }
    }

    #[test]
    fn truthful_workers_get_nonnegative_utility() {
        for model in ALL_MODELS {
            let m = truthful_market(model);
            let out = m.run();
            for i in 0..3 {
                // Skip the NCP originator: its participation is structural
                // (it holds the load) and its bonus can be negative — the
                // voluntary-participation theorem covers workers.
                if model.originator(3) == Some(i) {
                    continue;
                }
                assert!(out.utility(i) >= -1e-12, "{model} agent {i}: {}", out.utility(i));
            }
        }
    }

    #[test]
    fn compensation_reimburses_incurred_cost() {
        let out = truthful_market(SystemModel::NcpFe).run();
        for i in 0..3 {
            // Truthful agents: C_i = α_i·w_i with w = (1, 2, 3).
            let expected = out.alloc[i] * (i + 1) as f64;
            assert!((out.payments[i].compensation - expected).abs() < 1e-12);
            assert!(out.payments[i].compensation > 0.0);
        }
    }

    #[test]
    fn slacking_reduces_utility() {
        for model in ALL_MODELS {
            let honest = truthful_market(model).run();
            let slacker = Market::new(
                model,
                0.2,
                vec![
                    AgentSpec::slacking(1.0, 2.0), // executes twice as slow
                    AgentSpec::truthful(2.0),
                    AgentSpec::truthful(3.0),
                ],
            )
            .unwrap()
            .run();
            assert!(
                slacker.utility(0) < honest.utility(0),
                "{model}: slacking should hurt ({} vs {})",
                slacker.utility(0),
                honest.utility(0)
            );
        }
    }

    #[test]
    fn overbidding_reduces_utility() {
        for model in ALL_MODELS {
            let honest = truthful_market(model).run();
            let liar = Market::new(
                model,
                0.2,
                vec![
                    AgentSpec::misreporting(1.0, 1.8),
                    AgentSpec::truthful(2.0),
                    AgentSpec::truthful(3.0),
                ],
            )
            .unwrap()
            .run();
            assert!(
                liar.utility(0) <= honest.utility(0) + 1e-12,
                "{model}: overbidding should not help ({} vs {})",
                liar.utility(0),
                honest.utility(0)
            );
        }
    }

    #[test]
    fn underbidding_reduces_utility() {
        // Claiming to be faster than you are gets you more load than you
        // can chew; the realized schedule is longer and the bonus smaller.
        for model in ALL_MODELS {
            let honest = truthful_market(model).run();
            let liar = Market::new(
                model,
                0.2,
                vec![
                    AgentSpec {
                        true_w: 1.0,
                        bid: 0.4,
                        exec_w: 1.0,
                    },
                    AgentSpec::truthful(2.0),
                    AgentSpec::truthful(3.0),
                ],
            )
            .unwrap()
            .run();
            assert!(
                liar.utility(0) <= honest.utility(0) + 1e-12,
                "{model}: underbidding should not help ({} vs {})",
                liar.utility(0),
                honest.utility(0)
            );
        }
    }

    #[test]
    fn realized_makespan_reflects_slow_execution() {
        let honest = truthful_market(SystemModel::Cp).run();
        let slacker = Market::new(
            SystemModel::Cp,
            0.2,
            vec![
                AgentSpec::slacking(1.0, 3.0),
                AgentSpec::truthful(2.0),
                AgentSpec::truthful(3.0),
            ],
        )
        .unwrap()
        .run();
        assert!(slacker.actual_makespan > honest.actual_makespan);
    }

    #[test]
    fn user_bill_covers_all_payments() {
        let out = truthful_market(SystemModel::NcpNfe).run();
        let manual: f64 = out.payments.iter().map(Payment::total).sum();
        assert!((out.user_bill() - manual).abs() < 1e-12);
        assert!(out.user_bill() > 0.0);
    }

    #[test]
    fn fast_payments_match_naive_oracle() {
        for model in ALL_MODELS {
            let market = Market::new(
                model,
                0.2,
                vec![
                    AgentSpec::misreporting(1.0, 1.5),
                    AgentSpec::truthful(2.0),
                    AgentSpec::slacking(1.5, 2.0),
                    AgentSpec::truthful(3.0),
                ],
            )
            .unwrap();
            let bid_params = BusParams::new(market.z(), market.bids()).unwrap();
            let alloc = optimal::fractions(model, &bid_params);
            let fast = compute_payments(model, &bid_params, &alloc, &market.observed());
            let naive = compute_payments_naive(model, &bid_params, &alloc, &market.observed());
            for (f, n) in fast.iter().zip(&naive) {
                assert!((f.compensation - n.compensation).abs() < 1e-12, "{model}");
                assert!((f.bonus - n.bonus).abs() < 1e-12, "{model}: {f:?} vs {n:?}");
            }
        }
    }

    #[test]
    fn payments_function_matches_market_run() {
        let m = truthful_market(SystemModel::NcpFe);
        let out = m.run();
        let bid_params = BusParams::new(m.z(), m.bids()).unwrap();
        let manual = compute_payments(m.model(), &bid_params, &out.alloc, &m.observed());
        assert_eq!(manual, out.payments);
    }
}
