//! Exact-rational DLS-BL payments — certifies the f64 payment computation
//! the same way `dls-dlt::exact` certifies the allocation solver.
//!
//! Payment disputes are adjudicated numerically (the referee compares
//! vectors within a tolerance); this module bounds the legitimate numeric
//! disagreement by computing `C_i` and `B_i` over [`Rational`]s, where the
//! compensation-cancels-valuation identity `U_i = B_i` holds *exactly*.

use dls_dlt::exact::{self, ExactParams};
use dls_dlt::SystemModel;
use dls_num::Rational;

/// One exact payment entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactPayment {
    /// Compensation `C_i = α_i·w̃_i`.
    pub compensation: Rational,
    /// Bonus `B_i = T(α(b_{-i}), b_{-i}) − T(α(b), (b_{-i}, w̃_i))`.
    pub bonus: Rational,
}

impl ExactPayment {
    /// Total payment `Q_i`.
    pub fn total(&self) -> Rational {
        &self.compensation + &self.bonus
    }
}

fn max_time(times: Vec<Rational>) -> Rational {
    times.into_iter().max().expect("non-empty market")
}

/// Exact DLS-BL payments for bids `b` and observed rates `w̃`.
///
/// # Panics
/// Panics on length mismatches or non-positive rates.
pub fn compute_payments_exact(
    model: SystemModel,
    z: &Rational,
    bids: &[Rational],
    observed: &[Rational],
) -> Vec<ExactPayment> {
    let m = bids.len();
    assert_eq!(observed.len(), m, "observed length mismatch");
    let params = ExactParams::new(z.clone(), bids.to_vec());
    let alloc = exact::fractions(model, &params);

    (0..m)
        .map(|i| {
            let compensation = &alloc[i] * &observed[i];
            // Reduced market: bids without i.
            let t_without = if m == 1 {
                &alloc[i] * &bids[i]
            } else {
                let mut reduced = bids.to_vec();
                reduced.remove(i);
                let rp = ExactParams::new(z.clone(), reduced);
                max_time(exact::finish_times(
                    model,
                    &rp,
                    &exact::fractions(model, &rp),
                ))
            };
            // Realized schedule: everyone at bid, i at observed.
            let mut mixed = bids.to_vec();
            mixed[i] = observed[i].clone();
            let mp = ExactParams::new(z.clone(), mixed);
            let t_actual = max_time(exact::finish_times(model, &mp, &alloc));
            ExactPayment {
                compensation,
                bonus: &t_without - &t_actual,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute_payments;
    use dls_dlt::{optimal, BusParams, ALL_MODELS};

    fn rat(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    #[test]
    fn exact_certifies_f64_payments() {
        // Exactly representable parameters so f64 and rational inputs are
        // identical numbers.
        let z = 0.25;
        let bids = [1.0, 2.0, 1.5, 3.0];
        let observed = [1.0, 2.5, 1.5, 3.0]; // P2 slacks
        for model in ALL_MODELS {
            let p = BusParams::new(z, bids.to_vec()).unwrap();
            let alloc = optimal::fractions(model, &p);
            let fp = compute_payments(model, &p, &alloc, &observed);
            let ep = compute_payments_exact(
                model,
                &rat(1, 4),
                &bids.map(|b| Rational::from_f64(b).unwrap()),
                &observed.map(|b| Rational::from_f64(b).unwrap()),
            );
            for (f, e) in fp.iter().zip(&ep) {
                assert!(
                    (f.compensation - e.compensation.to_f64()).abs() < 1e-12,
                    "{model} compensation"
                );
                assert!(
                    (f.bonus - e.bonus.to_f64()).abs() < 1e-12,
                    "{model} bonus: {} vs {}",
                    f.bonus,
                    e.bonus.to_f64()
                );
            }
        }
    }

    #[test]
    fn truthful_utility_is_exactly_bonus() {
        // U_i = Q_i − α_i·w̃_i = B_i with ZERO error in exact arithmetic.
        let z = rat(1, 5);
        let bids = [rat(1, 1), rat(2, 1), rat(3, 1)];
        let payments =
            compute_payments_exact(SystemModel::NcpFe, &z, &bids, &bids);
        let params = ExactParams::new(z, bids.to_vec());
        let alloc = exact::fractions(SystemModel::NcpFe, &params);
        for (i, p) in payments.iter().enumerate() {
            let cost = &alloc[i] * &bids[i];
            let utility = &p.total() - &cost;
            assert_eq!(utility, p.bonus, "agent {i}");
        }
    }

    #[test]
    fn truthful_worker_bonus_nonnegative_exactly() {
        let z = rat(1, 4);
        let bids = [rat(1, 1), rat(5, 2), rat(3, 2), rat(3, 1)];
        for model in ALL_MODELS {
            let payments = compute_payments_exact(model, &z, &bids, &bids);
            let orig = model.originator(bids.len());
            for (i, p) in payments.iter().enumerate() {
                if Some(i) == orig {
                    continue;
                }
                assert!(
                    !p.bonus.is_negative(),
                    "{model} worker {i}: negative exact bonus {}",
                    p.bonus
                );
            }
        }
    }

    #[test]
    fn slacking_shrinks_bonus_exactly() {
        let z = rat(1, 5);
        let bids = [rat(1, 1), rat(2, 1), rat(3, 1)];
        let honest = compute_payments_exact(SystemModel::NcpFe, &z, &bids, &bids);
        let mut slack = bids.to_vec();
        slack[1] = rat(4, 1); // P2 runs at half speed
        let slacked = compute_payments_exact(SystemModel::NcpFe, &z, &bids, &slack);
        assert!(slacked[1].bonus < honest[1].bonus);
    }

    #[test]
    fn single_agent_market() {
        let p = compute_payments_exact(
            SystemModel::NcpFe,
            &rat(1, 2),
            &[rat(2, 1)],
            &[rat(2, 1)],
        );
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].compensation, rat(2, 1));
    }
}
