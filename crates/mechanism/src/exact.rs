//! Exact-rational DLS-BL payments — certifies the f64 payment computation
//! the same way `dls-dlt::exact` certifies the allocation solver.
//!
//! Payment disputes are adjudicated numerically (the referee compares
//! vectors within a tolerance); this module bounds the legitimate numeric
//! disagreement by computing `C_i` and `B_i` over [`Rational`]s, where the
//! compensation-cancels-valuation identity `U_i = B_i` holds *exactly*.
//!
//! The default solver ([`compute_payments_exact`]) is O(m) rational
//! operations for the whole vector via the shared chain-splice state
//! ([`LeaveOneOut`]); [`compute_payments_exact_naive`] keeps the Θ(m²)
//! per-agent re-solve as the differential-test oracle, and
//! [`compute_payments_exact_parallel`] fans the per-agent O(1) work out over
//! scoped threads for large markets (exact arithmetic makes the result
//! bit-identical regardless of the thread count).

use dls_dlt::exact::{self, ExactParams};
use dls_dlt::loo::LeaveOneOut;
use dls_dlt::SystemModel;
use dls_num::Rational;
use std::fmt;

/// One exact payment entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactPayment {
    /// Compensation `C_i = α_i·w̃_i`.
    pub compensation: Rational,
    /// Bonus `B_i = T(α(b_{-i}), b_{-i}) − T(α(b), (b_{-i}, w̃_i))`.
    pub bonus: Rational,
}

impl ExactPayment {
    /// Total payment `Q_i`.
    pub fn total(&self) -> Rational {
        &self.compensation + &self.bonus
    }
}

/// Hostile or malformed input to the exact payment solvers.
///
/// Mirrors the bid-receipt validation story of the protocol layer: a peer
/// that feeds the payment phase garbage gets a typed rejection, never a
/// panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExactPaymentError {
    /// No agents at all.
    EmptyMarket,
    /// `bids` and `observed` have different lengths.
    LengthMismatch {
        /// Number of bids supplied.
        bids: usize,
        /// Number of observed rates supplied.
        observed: usize,
    },
    /// The communication rate `z` is negative.
    NegativeCommRate,
    /// A bid is zero or negative.
    NonPositiveBid {
        /// Offending agent (0-based).
        index: usize,
    },
    /// An observed execution rate is zero or negative.
    NonPositiveObserved {
        /// Offending agent (0-based).
        index: usize,
    },
}

impl fmt::Display for ExactPaymentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExactPaymentError::EmptyMarket => write!(f, "empty market"),
            ExactPaymentError::LengthMismatch { bids, observed } => {
                write!(f, "{bids} bids but {observed} observed rates")
            }
            ExactPaymentError::NegativeCommRate => {
                write!(f, "negative communication rate")
            }
            ExactPaymentError::NonPositiveBid { index } => {
                write!(f, "agent {index}: non-positive bid")
            }
            ExactPaymentError::NonPositiveObserved { index } => {
                write!(f, "agent {index}: non-positive observed rate")
            }
        }
    }
}

impl std::error::Error for ExactPaymentError {}

/// Largest of a set of finishing times; `None` on an empty market.
fn max_time(times: Vec<Rational>) -> Option<Rational> {
    times.into_iter().max()
}

fn validate(
    z: &Rational,
    bids: &[Rational],
    observed: &[Rational],
) -> Result<(), ExactPaymentError> {
    if bids.is_empty() {
        return Err(ExactPaymentError::EmptyMarket);
    }
    if observed.len() != bids.len() {
        return Err(ExactPaymentError::LengthMismatch {
            bids: bids.len(),
            observed: observed.len(),
        });
    }
    if z.is_negative() {
        return Err(ExactPaymentError::NegativeCommRate);
    }
    for (index, b) in bids.iter().enumerate() {
        if !b.is_positive() {
            return Err(ExactPaymentError::NonPositiveBid { index });
        }
    }
    for (index, o) in observed.iter().enumerate() {
        if !o.is_positive() {
            return Err(ExactPaymentError::NonPositiveObserved { index });
        }
    }
    Ok(())
}

/// Shared O(m) precomputation behind the fast sequential and parallel paths.
struct Solved {
    loo: LeaveOneOut<Rational>,
    alloc: Vec<Rational>,
    /// Finish times of the all-bids schedule under `alloc`.
    base: Vec<Rational>,
    /// `prefix_max[i] = max(base[..=i])`.
    prefix_max: Vec<Rational>,
    /// `suffix_max[i] = max(base[i..])`.
    suffix_max: Vec<Rational>,
}

impl Solved {
    fn new(model: SystemModel, z: &Rational, bids: &[Rational]) -> Self {
        let params = ExactParams::new(z.clone(), bids.to_vec());
        let alloc = exact::fractions(model, &params);
        let base = exact::finish_times(model, &params, &alloc);
        let m = base.len();
        let mut prefix_max = base.clone();
        for i in 1..m {
            if prefix_max[i - 1] > prefix_max[i] {
                prefix_max[i] = prefix_max[i - 1].clone();
            }
        }
        let mut suffix_max = base.clone();
        for i in (0..m.saturating_sub(1)).rev() {
            if suffix_max[i + 1] > suffix_max[i] {
                suffix_max[i] = suffix_max[i + 1].clone();
            }
        }
        Solved {
            loo: LeaveOneOut::new(model, z.clone(), bids.to_vec()),
            alloc,
            base,
            prefix_max,
            suffix_max,
        }
    }

    /// Payment for agent `i` in O(1) rational operations.
    fn pay_one(&self, i: usize, bids: &[Rational], observed: &[Rational]) -> ExactPayment {
        let m = self.base.len();
        let compensation = &self.alloc[i] * &observed[i];
        let t_without = self
            .loo
            .makespan_without(i)
            .unwrap_or_else(|| &self.alloc[i] * &bids[i]);
        // Mixed schedule (b_{-i}, w̃_i): only T_i moves, by α_i·(w̃_i − b_i);
        // the other finish times are read off the precomputed maxima.
        let shift = &self.alloc[i] * &(&observed[i] - &bids[i]);
        let mut t_actual = &self.base[i] + &shift;
        if i > 0 && self.prefix_max[i - 1] > t_actual {
            t_actual = self.prefix_max[i - 1].clone();
        }
        if i + 1 < m && self.suffix_max[i + 1] > t_actual {
            t_actual = self.suffix_max[i + 1].clone();
        }
        ExactPayment {
            compensation,
            bonus: &t_without - &t_actual,
        }
    }
}

/// Exact DLS-BL payments for bids `b` and observed rates `w̃`, in O(m)
/// rational operations total (chain-splice leave-one-out terms plus
/// prefix/suffix-maxima mixed-schedule terms).
pub fn compute_payments_exact(
    model: SystemModel,
    z: &Rational,
    bids: &[Rational],
    observed: &[Rational],
) -> Result<Vec<ExactPayment>, ExactPaymentError> {
    validate(z, bids, observed)?;
    let solved = Solved::new(model, z, bids);
    Ok((0..bids.len())
        .map(|i| solved.pay_one(i, bids, observed))
        .collect())
}

/// The pre-optimization exact payment computation: per-agent reduced-market
/// re-solve and full mixed-schedule re-evaluation, Θ(m²) rational operations
/// for the vector. Retained as the independent differential-test oracle for
/// [`compute_payments_exact`].
pub fn compute_payments_exact_naive(
    model: SystemModel,
    z: &Rational,
    bids: &[Rational],
    observed: &[Rational],
) -> Result<Vec<ExactPayment>, ExactPaymentError> {
    validate(z, bids, observed)?;
    let m = bids.len();
    let params = ExactParams::new(z.clone(), bids.to_vec());
    let alloc = exact::fractions(model, &params);

    let mut payments = Vec::with_capacity(m);
    for i in 0..m {
        let compensation = &alloc[i] * &observed[i];
        // Reduced market: bids without i.
        let t_without = if m == 1 {
            &alloc[i] * &bids[i]
        } else {
            let mut reduced = bids.to_vec();
            reduced.remove(i);
            let rp = ExactParams::new(z.clone(), reduced);
            max_time(exact::finish_times(
                model,
                &rp,
                &exact::fractions(model, &rp),
            ))
            .ok_or(ExactPaymentError::EmptyMarket)?
        };
        // Realized schedule: everyone at bid, i at observed.
        let mut mixed = bids.to_vec();
        mixed[i] = observed[i].clone();
        let mp = ExactParams::new(z.clone(), mixed);
        let t_actual = max_time(exact::finish_times(model, &mp, &alloc))
            .ok_or(ExactPaymentError::EmptyMarket)?;
        payments.push(ExactPayment {
            compensation,
            bonus: &t_without - &t_actual,
        });
    }
    Ok(payments)
}

/// [`compute_payments_exact`] with the per-agent O(1) work fanned out over
/// at most `threads` scoped OS threads — the opt-in path for large markets,
/// where individual rational operations are expensive enough to amortize
/// thread startup.
///
/// Exact arithmetic means the result is bit-identical to the sequential
/// solver for any `threads` value; `threads ≤ 1` (or a small market) simply
/// runs sequentially.
pub fn compute_payments_exact_parallel(
    model: SystemModel,
    z: &Rational,
    bids: &[Rational],
    observed: &[Rational],
    threads: usize,
) -> Result<Vec<ExactPayment>, ExactPaymentError> {
    validate(z, bids, observed)?;
    let m = bids.len();
    let threads = threads.min(m);
    if threads <= 1 {
        let solved = Solved::new(model, z, bids);
        return Ok((0..m).map(|i| solved.pay_one(i, bids, observed)).collect());
    }
    let solved = Solved::new(model, z, bids);
    let chunk = m.div_ceil(threads);
    let mut out: Vec<Option<ExactPayment>> = vec![None; m];
    std::thread::scope(|s| {
        for (t, slots) in out.chunks_mut(chunk).enumerate() {
            let solved = &solved;
            s.spawn(move || {
                let start = t * chunk;
                for (off, slot) in slots.iter_mut().enumerate() {
                    *slot = Some(solved.pay_one(start + off, bids, observed));
                }
            });
        }
    });
    // Every chunk was filled by its thread (scope joins them all); a hole
    // would be an internal bug, surfaced as a typed error rather than a
    // panic to honor the panic-free contract.
    let mut payments = Vec::with_capacity(m);
    for slot in out {
        payments.push(slot.ok_or(ExactPaymentError::EmptyMarket)?);
    }
    Ok(payments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute_payments;
    use dls_dlt::{optimal, BusParams, ALL_MODELS};

    fn rat(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    #[test]
    fn exact_certifies_f64_payments() {
        // Exactly representable parameters so f64 and rational inputs are
        // identical numbers.
        let z = 0.25;
        let bids = [1.0, 2.0, 1.5, 3.0];
        let observed = [1.0, 2.5, 1.5, 3.0]; // P2 slacks
        for model in ALL_MODELS {
            let p = BusParams::new(z, bids.to_vec()).unwrap();
            let alloc = optimal::fractions(model, &p);
            let fp = compute_payments(model, &p, &alloc, &observed);
            let ep = compute_payments_exact(
                model,
                &rat(1, 4),
                &bids.map(|b| Rational::from_f64(b).unwrap()),
                &observed.map(|b| Rational::from_f64(b).unwrap()),
            )
            .unwrap();
            for (f, e) in fp.iter().zip(&ep) {
                assert!(
                    (f.compensation - e.compensation.to_f64()).abs() < 1e-12,
                    "{model} compensation"
                );
                assert!(
                    (f.bonus - e.bonus.to_f64()).abs() < 1e-12,
                    "{model} bonus: {} vs {}",
                    f.bonus,
                    e.bonus.to_f64()
                );
            }
        }
    }

    #[test]
    fn fast_matches_naive_exactly() {
        let z = rat(1, 5);
        let bids = [rat(1, 1), rat(5, 2), rat(3, 2), rat(3, 1), rat(2, 1)];
        let mut observed = bids.to_vec();
        observed[1] = rat(7, 2); // P2 slacks
        observed[3] = rat(4, 1); // P4 slacks
        for model in ALL_MODELS {
            let fast = compute_payments_exact(model, &z, &bids, &observed).unwrap();
            let naive = compute_payments_exact_naive(model, &z, &bids, &observed).unwrap();
            assert_eq!(fast, naive, "{model}");
        }
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let z = rat(1, 4);
        let bids: Vec<Rational> = (1..=9).map(|k| rat(k + 8, 8)).collect();
        let mut observed = bids.clone();
        observed[4] = rat(3, 1);
        for model in ALL_MODELS {
            let seq = compute_payments_exact(model, &z, &bids, &observed).unwrap();
            for threads in [1, 2, 3, 8, 64] {
                let par =
                    compute_payments_exact_parallel(model, &z, &bids, &observed, threads)
                        .unwrap();
                assert_eq!(seq, par, "{model} threads={threads}");
            }
        }
    }

    #[test]
    fn hostile_input_yields_typed_errors() {
        let z = rat(1, 4);
        let bids = [rat(1, 1), rat(2, 1)];
        assert_eq!(
            compute_payments_exact(SystemModel::Cp, &z, &[], &[]),
            Err(ExactPaymentError::EmptyMarket)
        );
        assert_eq!(
            compute_payments_exact(SystemModel::Cp, &z, &bids, &bids[..1]),
            Err(ExactPaymentError::LengthMismatch { bids: 2, observed: 1 })
        );
        assert_eq!(
            compute_payments_exact(SystemModel::Cp, &rat(-1, 4), &bids, &bids),
            Err(ExactPaymentError::NegativeCommRate)
        );
        assert_eq!(
            compute_payments_exact(
                SystemModel::Cp,
                &z,
                &[rat(1, 1), Rational::zero()],
                &bids
            ),
            Err(ExactPaymentError::NonPositiveBid { index: 1 })
        );
        assert_eq!(
            compute_payments_exact(
                SystemModel::Cp,
                &z,
                &bids,
                &[rat(1, 1), rat(-2, 1)]
            ),
            Err(ExactPaymentError::NonPositiveObserved { index: 1 })
        );
        // The naive oracle and the parallel path apply the same validation.
        assert_eq!(
            compute_payments_exact_naive(SystemModel::Cp, &z, &[], &[]),
            Err(ExactPaymentError::EmptyMarket)
        );
        assert_eq!(
            compute_payments_exact_parallel(SystemModel::Cp, &z, &bids, &bids[..1], 4),
            Err(ExactPaymentError::LengthMismatch { bids: 2, observed: 1 })
        );
    }

    #[test]
    fn truthful_utility_is_exactly_bonus() {
        // U_i = Q_i − α_i·w̃_i = B_i with ZERO error in exact arithmetic.
        let z = rat(1, 5);
        let bids = [rat(1, 1), rat(2, 1), rat(3, 1)];
        let payments =
            compute_payments_exact(SystemModel::NcpFe, &z, &bids, &bids).unwrap();
        let params = ExactParams::new(z, bids.to_vec());
        let alloc = exact::fractions(SystemModel::NcpFe, &params);
        for (i, p) in payments.iter().enumerate() {
            let cost = &alloc[i] * &bids[i];
            let utility = &p.total() - &cost;
            assert_eq!(utility, p.bonus, "agent {i}");
        }
    }

    #[test]
    fn truthful_worker_bonus_nonnegative_exactly() {
        let z = rat(1, 4);
        let bids = [rat(1, 1), rat(5, 2), rat(3, 2), rat(3, 1)];
        for model in ALL_MODELS {
            let payments = compute_payments_exact(model, &z, &bids, &bids).unwrap();
            let orig = model.originator(bids.len());
            for (i, p) in payments.iter().enumerate() {
                if Some(i) == orig {
                    continue;
                }
                assert!(
                    !p.bonus.is_negative(),
                    "{model} worker {i}: negative exact bonus {}",
                    p.bonus
                );
            }
        }
    }

    #[test]
    fn slacking_shrinks_bonus_exactly() {
        let z = rat(1, 5);
        let bids = [rat(1, 1), rat(2, 1), rat(3, 1)];
        let honest =
            compute_payments_exact(SystemModel::NcpFe, &z, &bids, &bids).unwrap();
        let mut slack = bids.to_vec();
        slack[1] = rat(4, 1); // P2 runs at half speed
        let slacked =
            compute_payments_exact(SystemModel::NcpFe, &z, &bids, &slack).unwrap();
        assert!(slacked[1].bonus < honest[1].bonus);
    }

    #[test]
    fn single_agent_market() {
        let p = compute_payments_exact(
            SystemModel::NcpFe,
            &rat(1, 2),
            &[rat(2, 1)],
            &[rat(2, 1)],
        )
        .unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].compensation, rat(2, 1));
    }
}
