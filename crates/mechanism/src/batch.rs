//! Batched auction throughput layer: independent markets fanned across
//! scoped worker threads.
//!
//! An auctioneer clearing many *independent* markets (one per load, per
//! session, per experiment cell) has embarrassingly parallel work with a
//! cache-friendly shape: every market in a batch shares the model, the bus
//! rate `z`, and the market size `m`. [`BatchWorkload`] therefore stores
//! the batch structure-of-arrays — one flat `bids` array and one flat
//! `observed` array, `markets × m`, no per-market boxing — and
//! [`BatchAuctioneer::run`] carves the batch into contiguous chunks over
//! `std::thread::scope` workers. Each worker owns **one**
//! [`AuctionEngine`] and walks its chunk via
//! [`AuctionEngine::load_bids`], so per-market cost is a rebuild into
//! retained buffers: zero allocations after the first market of a chunk.
//!
//! Results land in pre-sized `Option` slots (the same pattern as
//! `exact::compute_payments_exact_parallel`); holes or worker errors
//! surface as typed [`EngineError`]s, never panics — this module is covered
//! by the workspace no-panic lint gate.
//!
//! Workers additionally run behind a panic barrier: a worker that panics
//! poisons only the markets of its own chunk it had not yet completed.
//! [`BatchAuctioneer::run`] maps any poisoned market to a batch-level
//! [`EngineError`]; [`BatchAuctioneer::run_contained`] instead returns a
//! [`BatchReport`] that keeps every completed market's results and lists
//! the poisoned ones per-market.

use crate::engine::{AuctionEngine, EngineError};
use crate::market::Payment;
use dls_dlt::SystemModel;
use std::panic::AssertUnwindSafe;

/// A batch of independent markets sharing `model`, `z` and size `m`,
/// stored structure-of-arrays.
#[derive(Debug, Clone)]
pub struct BatchWorkload {
    model: SystemModel,
    z: f64,
    m: usize,
    /// Concatenated bid vectors, `markets × m`.
    bids: Vec<f64>,
    /// Concatenated observed execution rates, `markets × m`.
    observed: Vec<f64>,
}

impl BatchWorkload {
    /// An empty batch of `m`-processor markets.
    pub fn new(model: SystemModel, z: f64, m: usize) -> Result<Self, EngineError> {
        if m == 0 {
            return Err(EngineError::Params(dls_dlt::ParamError::NoProcessors));
        }
        if !z.is_finite() || z < 0.0 {
            return Err(EngineError::Params(dls_dlt::ParamError::InvalidCommRate(z)));
        }
        Ok(BatchWorkload {
            model,
            z,
            m,
            bids: Vec::new(),
            observed: Vec::new(),
        })
    }

    /// Appends one market. Both slices must have length `m` and hold
    /// finite, positive rates.
    pub fn push_market(&mut self, bids: &[f64], observed: &[f64]) -> Result<(), EngineError> {
        if bids.len() != self.m {
            return Err(EngineError::LengthMismatch {
                expected: self.m,
                got: bids.len(),
            });
        }
        if observed.len() != self.m {
            return Err(EngineError::LengthMismatch {
                expected: self.m,
                got: observed.len(),
            });
        }
        for (index, &value) in bids.iter().enumerate() {
            if !value.is_finite() || value <= 0.0 {
                return Err(EngineError::InvalidBid { index, value });
            }
        }
        for (index, &value) in observed.iter().enumerate() {
            if !value.is_finite() || value <= 0.0 {
                return Err(EngineError::InvalidObserved { index, value });
            }
        }
        self.bids.extend_from_slice(bids);
        self.observed.extend_from_slice(observed);
        Ok(())
    }

    /// The system model shared by every market in the batch.
    pub fn model(&self) -> SystemModel {
        self.model
    }

    /// The bus rate shared by every market in the batch.
    pub fn z(&self) -> f64 {
        self.z
    }

    /// Processors per market.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of markets currently in the batch.
    pub fn markets(&self) -> usize {
        self.bids.len() / self.m
    }

    /// Bid vector of market `k`.
    pub fn market_bids(&self, k: usize) -> Option<&[f64]> {
        self.bids.get(k * self.m..(k + 1) * self.m)
    }

    /// Observed-rate vector of market `k`.
    pub fn market_observed(&self, k: usize) -> Option<&[f64]> {
        self.observed.get(k * self.m..(k + 1) * self.m)
    }
}

/// Results for a whole batch, structure-of-arrays like the workload.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    m: usize,
    /// Optimal makespan of each market, in batch order.
    pub makespans: Vec<f64>,
    /// Concatenated payment vectors, `markets × m`.
    pub payments: Vec<Payment>,
}

impl BatchOutcome {
    /// Payments of market `k`.
    pub fn payments_for(&self, k: usize) -> Option<&[Payment]> {
        self.payments.get(k * self.m..(k + 1) * self.m)
    }
}

/// One market a contained batch run could not evaluate, and why.
#[derive(Debug, Clone, PartialEq)]
pub struct MarketFailure {
    /// Batch-order market index.
    pub market: usize,
    /// The error that poisoned it — [`EngineError::WorkerPanicked`] when
    /// the chunk's worker panicked, otherwise the worker's typed error.
    pub error: EngineError,
}

/// Outcome of [`BatchAuctioneer::run_contained`]: every market the workers
/// completed keeps its results; markets poisoned by a worker panic or
/// error are listed in [`BatchReport::failures`] and read back as `None`.
#[derive(Debug, Clone)]
pub struct BatchReport {
    m: usize,
    makespans: Vec<Option<f64>>,
    /// Concatenated payment slots, `markets × m`; a poisoned market's row
    /// is all `None`.
    payments: Vec<Option<Payment>>,
    failures: Vec<MarketFailure>,
}

impl BatchReport {
    /// Number of markets in the batch (completed or not).
    pub fn markets(&self) -> usize {
        self.makespans.len()
    }

    /// The markets that could not be evaluated, in batch order.
    pub fn failures(&self) -> &[MarketFailure] {
        &self.failures
    }

    /// True when every market completed.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// Optimal makespan of market `k`, or `None` if it was poisoned.
    pub fn makespan_for(&self, k: usize) -> Option<f64> {
        self.makespans.get(k).copied().flatten()
    }

    /// Payments of market `k`, or `None` if it was poisoned.
    pub fn payments_for(&self, k: usize) -> Option<Vec<Payment>> {
        let row = self.payments.get(k * self.m..(k + 1) * self.m)?;
        row.iter().copied().collect()
    }

    /// Collapses to the strict all-or-nothing [`BatchOutcome`]: the first
    /// poisoned market's error fails the whole batch.
    pub fn into_outcome(self) -> Result<BatchOutcome, EngineError> {
        let n = self.makespans.len();
        if let Some(first) = self.failures.into_iter().next() {
            return Err(first.error);
        }
        let makespans: Vec<f64> = self.makespans.into_iter().flatten().collect();
        if makespans.len() != n {
            return Err(EngineError::BatchIncomplete);
        }
        let payments: Vec<Payment> = self.payments.into_iter().flatten().collect();
        if payments.len() != n * self.m {
            return Err(EngineError::BatchIncomplete);
        }
        Ok(BatchOutcome {
            m: self.m,
            makespans,
            payments,
        })
    }
}

/// Fans a [`BatchWorkload`] across scoped worker threads, one engine per
/// worker.
#[derive(Debug, Clone, Copy)]
pub struct BatchAuctioneer {
    threads: usize,
}

impl BatchAuctioneer {
    /// An auctioneer using up to `threads` workers (clamped to at least 1;
    /// also clamped to the batch size at run time).
    pub fn new(threads: usize) -> Self {
        BatchAuctioneer {
            threads: threads.max(1),
        }
    }

    /// An auctioneer sized to the machine.
    pub fn from_available_parallelism() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        BatchAuctioneer::new(threads)
    }

    /// Evaluates every market in the batch: optimal makespan plus DLS-BL
    /// payments under the recorded observed rates. Deterministic — results
    /// are in batch order and bit-identical to running each market through
    /// its own [`AuctionEngine`] sequentially. All-or-nothing: any poisoned
    /// market fails the whole batch with its error (a worker panic
    /// surfaces as [`EngineError::WorkerPanicked`], never an unwind).
    pub fn run(&self, work: &BatchWorkload) -> Result<BatchOutcome, EngineError> {
        self.run_with(work, run_chunk).into_outcome()
    }

    /// Like [`BatchAuctioneer::run`], but degradation-tolerant: a worker
    /// panic or error poisons only the markets of its chunk it had not
    /// completed, every other market keeps its results, and the poisoned
    /// ones are reported per-market in [`BatchReport::failures`].
    pub fn run_contained(&self, work: &BatchWorkload) -> BatchReport {
        self.run_with(work, run_chunk)
    }

    /// The shared fan-out core, parameterized over the chunk evaluator so
    /// tests can inject a deliberately panicking worker.
    fn run_with<F>(&self, work: &BatchWorkload, eval: F) -> BatchReport
    where
        F: Fn(&BatchWorkload, usize, &mut [Option<f64>], &mut [Option<Payment>]) -> Result<(), EngineError>
            + Sync,
    {
        let n = work.markets();
        let m = work.m;
        let mut makespans: Vec<Option<f64>> = vec![None; n];
        let mut payments: Vec<Option<Payment>> = vec![None; n * m];
        let threads = self.threads.min(n.max(1));
        // `chunks_mut(chunk)` yields ceil(n/chunk) chunks, which is
        // *fewer* than `threads` when n doesn't tile evenly (n=5,
        // threads=4 -> chunk=2 -> 3 chunks), so status must be sized
        // by the real chunk count or trailing slots stay None and every
        // market reports a spurious BatchIncomplete.
        let chunk = n.div_ceil(threads).max(1);
        let chunks = n.div_ceil(chunk);
        let mut status: Vec<Option<Result<(), EngineError>>> = vec![None; chunks];
        if threads <= 1 {
            if let Some(st) = status.first_mut() {
                *st = Some(contain(|| eval(work, 0, &mut makespans, &mut payments)));
            }
        } else {
            let eval = &eval;
            std::thread::scope(|s| {
                let slots = makespans
                    .chunks_mut(chunk)
                    .zip(payments.chunks_mut(chunk * m))
                    .zip(status.iter_mut())
                    .enumerate();
                for (t, ((mk, pay), st)) in slots {
                    s.spawn(move || {
                        *st = Some(contain(|| eval(work, t * chunk, mk, pay)));
                    });
                }
            });
        }
        // Per-market attribution: a market is complete iff its makespan
        // and its whole payment row landed; anything else inherits its
        // chunk's error (or BatchIncomplete for a silent hole) and has any
        // partial row cleared so readers see all-or-nothing per market.
        let mut failures = Vec::new();
        for k in 0..n {
            let whole = makespans.get(k).is_some_and(|s| s.is_some())
                && payments
                    .get(k * m..(k + 1) * m)
                    .is_some_and(|row| row.iter().all(|p| p.is_some()));
            if whole {
                continue;
            }
            let error = match status.get(k / chunk).cloned().flatten() {
                Some(Err(e)) => e,
                _ => EngineError::BatchIncomplete,
            };
            if let Some(slot) = makespans.get_mut(k) {
                *slot = None;
            }
            if let Some(row) = payments.get_mut(k * m..(k + 1) * m) {
                for p in row {
                    *p = None;
                }
            }
            failures.push(MarketFailure { market: k, error });
        }
        BatchReport {
            m,
            makespans,
            payments,
            failures,
        }
    }
}

/// Runs a chunk evaluator behind a panic barrier. A panic is converted to
/// [`EngineError::WorkerPanicked`]; the `AssertUnwindSafe` is sound
/// because the only state crossing the barrier is the chunk's `Option`
/// result slots, which the caller treats as poisoned unless fully filled.
fn contain(f: impl FnOnce() -> Result<(), EngineError>) -> Result<(), EngineError> {
    std::panic::catch_unwind(AssertUnwindSafe(f)).unwrap_or(Err(EngineError::WorkerPanicked))
}

/// Evaluates the markets `start..start + mk.len()` into the given slots,
/// reusing one engine for the whole chunk.
fn run_chunk(
    work: &BatchWorkload,
    start: usize,
    mk: &mut [Option<f64>],
    pay: &mut [Option<Payment>],
) -> Result<(), EngineError> {
    let m = work.m;
    let mut engine: Option<AuctionEngine> = None;
    for (off, slot) in mk.iter_mut().enumerate() {
        let k = start + off;
        let bids = work
            .market_bids(k)
            .ok_or(EngineError::BatchIncomplete)?;
        let observed = work
            .market_observed(k)
            .ok_or(EngineError::BatchIncomplete)?;
        let eng = match engine.as_mut() {
            Some(e) => {
                e.load_bids(bids)?;
                e
            }
            None => engine.insert(AuctionEngine::new(work.model, work.z, bids.to_vec())?),
        };
        *slot = Some(eng.optimal_makespan());
        let paid = eng.payments(observed)?;
        let dst = pay
            .get_mut(off * m..(off + 1) * m)
            .ok_or(EngineError::BatchIncomplete)?;
        for (d, p) in dst.iter_mut().zip(paid) {
            *d = Some(*p);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::market::compute_payments;
    use dls_dlt::{optimal, BusParams, ALL_MODELS};

    fn demo_workload(model: SystemModel, markets: usize) -> BatchWorkload {
        let m = 4;
        let mut work = BatchWorkload::new(model, 0.2, m).unwrap();
        for k in 0..markets {
            let bids: Vec<f64> = (0..m).map(|i| 1.0 + ((k + i) % 5) as f64 * 0.5).collect();
            // A couple of slackers per batch keep the payments non-trivial.
            let observed: Vec<f64> = bids
                .iter()
                .enumerate()
                .map(|(i, &b)| if (k + i) % 3 == 0 { b * 1.25 } else { b })
                .collect();
            work.push_market(&bids, &observed).unwrap();
        }
        work
    }

    #[test]
    fn batch_matches_sequential_one_shot_solvers() {
        for model in ALL_MODELS {
            let work = demo_workload(model, 13);
            for threads in [1, 4] {
                let out = BatchAuctioneer::new(threads).run(&work).unwrap();
                assert_eq!(out.makespans.len(), 13, "{model}");
                for k in 0..13 {
                    let bids = work.market_bids(k).unwrap();
                    let observed = work.market_observed(k).unwrap();
                    let params = BusParams::new(0.2, bids.to_vec()).unwrap();
                    let alloc = optimal::fractions(model, &params);
                    let expect_pay = compute_payments(model, &params, &alloc, observed);
                    assert_eq!(
                        out.payments_for(k).unwrap(),
                        expect_pay.as_slice(),
                        "{model} market {k} threads {threads}"
                    );
                    let expect_ms = optimal::optimal_makespan(model, &params);
                    // Makespans agree to the bit: the chain prefix form is
                    // certified against the generic solver in dls-dlt.
                    let got = out.makespans[k];
                    assert!(
                        (got - expect_ms).abs() <= 1e-12 * expect_ms,
                        "{model} market {k}: {got} vs {expect_ms}"
                    );
                }
            }
        }
    }

    /// Regression: when the batch doesn't tile evenly across workers,
    /// `chunks_mut` yields fewer chunks than threads (n=5, threads=4 ->
    /// chunk=2 -> 3 chunks). Status slots must be sized by the real chunk
    /// count, not the thread count, or `run` reports BatchIncomplete even
    /// though every market was evaluated.
    #[test]
    fn uneven_batches_complete() {
        for (markets, threads) in [(5, 4), (9, 8), (3, 64), (7, 2)] {
            let work = demo_workload(SystemModel::NcpFe, markets);
            let base = BatchAuctioneer::new(1).run(&work).unwrap();
            let out = BatchAuctioneer::new(threads)
                .run(&work)
                .unwrap_or_else(|e| panic!("n={markets} threads={threads}: {e}"));
            assert_eq!(out, base, "n={markets} threads={threads}");
        }
    }

    #[test]
    fn thread_counts_do_not_change_results() {
        let work = demo_workload(SystemModel::NcpNfe, 29);
        let base = BatchAuctioneer::new(1).run(&work).unwrap();
        for threads in [2, 3, 8, 64] {
            let out = BatchAuctioneer::new(threads).run(&work).unwrap();
            assert_eq!(out, base, "threads = {threads}");
        }
    }

    #[test]
    fn contained_run_matches_strict_run_when_healthy() {
        let work = demo_workload(SystemModel::NcpNfe, 9);
        let strict = BatchAuctioneer::new(3).run(&work).unwrap();
        let report = BatchAuctioneer::new(3).run_contained(&work);
        assert!(report.is_complete());
        assert_eq!(report.markets(), 9);
        for k in 0..9 {
            assert_eq!(report.makespan_for(k), Some(strict.makespans[k]));
            assert_eq!(
                report.payments_for(k).unwrap(),
                strict.payments_for(k).unwrap()
            );
        }
        assert_eq!(report.into_outcome().unwrap(), strict);
    }

    /// The tentpole containment property: a worker that panics poisons
    /// only the markets of its own chunk it had not completed. Injected
    /// through the chunk-evaluator seam because the production
    /// `run_chunk` is panic-free by the lint gate.
    #[test]
    fn panicking_worker_poisons_only_its_unfinished_markets() {
        let work = demo_workload(SystemModel::NcpFe, 13);
        let base = BatchAuctioneer::new(1).run(&work).unwrap();
        let poison = 7usize;
        let rigged = |w: &BatchWorkload,
                      start: usize,
                      mk: &mut [Option<f64>],
                      pay: &mut [Option<Payment>]|
         -> Result<(), EngineError> {
            let m = w.m();
            for off in 0..mk.len() {
                let k = start + off;
                if k == poison {
                    panic!("rigged worker failure");
                }
                run_chunk(w, k, &mut mk[off..off + 1], &mut pay[off * m..(off + 1) * m])?;
            }
            Ok(())
        };
        // Silence the expected panic's default stderr backtrace.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let quad = BatchAuctioneer::new(4).run_with(&work, rigged);
        let solo = BatchAuctioneer::new(1).run_with(&work, rigged);
        std::panic::set_hook(hook);

        // threads=4, chunk=4: markets 4..=7 share the rigged worker; 4, 5
        // and 6 completed before the panic and survive, 7 alone poisons.
        assert_eq!(
            quad.failures(),
            &[MarketFailure {
                market: poison,
                error: EngineError::WorkerPanicked,
            }]
        );
        assert!(quad.makespan_for(poison).is_none());
        assert!(quad.payments_for(poison).is_none());
        for k in (0..13).filter(|&k| k != poison) {
            assert_eq!(quad.makespan_for(k), Some(base.makespans[k]), "market {k}");
            assert_eq!(
                quad.payments_for(k).unwrap(),
                base.payments_for(k).unwrap(),
                "market {k}"
            );
        }
        assert!(matches!(
            quad.into_outcome(),
            Err(EngineError::WorkerPanicked)
        ));

        // threads=1: a single chunk, so everything past the panic point is
        // poisoned but the markets finished before it still survive.
        for k in 0..poison {
            assert_eq!(solo.makespan_for(k), Some(base.makespans[k]), "market {k}");
        }
        for k in poison..13 {
            assert!(solo.makespan_for(k).is_none(), "market {k}");
            assert!(solo.payments_for(k).is_none(), "market {k}");
        }
        assert_eq!(solo.failures().len(), 13 - poison);
        assert!(solo
            .failures()
            .iter()
            .all(|f| f.error == EngineError::WorkerPanicked));
    }

    #[test]
    fn empty_batch_is_fine() {
        let work = BatchWorkload::new(SystemModel::Cp, 0.1, 3).unwrap();
        let out = BatchAuctioneer::new(4).run(&work).unwrap();
        assert!(out.makespans.is_empty());
        assert!(out.payments.is_empty());
    }

    #[test]
    fn workload_validation() {
        assert!(matches!(
            BatchWorkload::new(SystemModel::Cp, 0.1, 0),
            Err(EngineError::Params(_))
        ));
        assert!(matches!(
            BatchWorkload::new(SystemModel::Cp, f64::NAN, 3),
            Err(EngineError::Params(_))
        ));
        let mut work = BatchWorkload::new(SystemModel::Cp, 0.1, 3).unwrap();
        assert!(matches!(
            work.push_market(&[1.0, 2.0], &[1.0, 2.0, 3.0]),
            Err(EngineError::LengthMismatch { expected: 3, got: 2 })
        ));
        assert!(matches!(
            work.push_market(&[1.0, 2.0, -3.0], &[1.0, 2.0, 3.0]),
            Err(EngineError::InvalidBid { index: 2, .. })
        ));
        assert!(matches!(
            work.push_market(&[1.0, 2.0, 3.0], &[1.0, 0.0, 3.0]),
            Err(EngineError::InvalidObserved { index: 1, .. })
        ));
        assert_eq!(work.markets(), 0);
    }
}
