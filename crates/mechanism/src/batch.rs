//! Batched auction throughput layer: independent markets fanned across
//! scoped worker threads.
//!
//! An auctioneer clearing many *independent* markets (one per load, per
//! session, per experiment cell) has embarrassingly parallel work with a
//! cache-friendly shape: every market in a batch shares the model, the bus
//! rate `z`, and the market size `m`. [`BatchWorkload`] therefore stores
//! the batch structure-of-arrays — one flat `bids` array and one flat
//! `observed` array, `markets × m`, no per-market boxing — and
//! [`BatchAuctioneer::run`] carves the batch into contiguous chunks over
//! `std::thread::scope` workers. Each worker owns **one**
//! [`AuctionEngine`] and walks its chunk via
//! [`AuctionEngine::load_bids`], so per-market cost is a rebuild into
//! retained buffers: zero allocations after the first market of a chunk.
//!
//! Results land in pre-sized `Option` slots (the same pattern as
//! `exact::compute_payments_exact_parallel`); holes or worker errors
//! surface as typed [`EngineError`]s, never panics — this module is covered
//! by the workspace no-panic lint gate.

use crate::engine::{AuctionEngine, EngineError};
use crate::market::Payment;
use dls_dlt::SystemModel;

/// A batch of independent markets sharing `model`, `z` and size `m`,
/// stored structure-of-arrays.
#[derive(Debug, Clone)]
pub struct BatchWorkload {
    model: SystemModel,
    z: f64,
    m: usize,
    /// Concatenated bid vectors, `markets × m`.
    bids: Vec<f64>,
    /// Concatenated observed execution rates, `markets × m`.
    observed: Vec<f64>,
}

impl BatchWorkload {
    /// An empty batch of `m`-processor markets.
    pub fn new(model: SystemModel, z: f64, m: usize) -> Result<Self, EngineError> {
        if m == 0 {
            return Err(EngineError::Params(dls_dlt::ParamError::NoProcessors));
        }
        if !z.is_finite() || z < 0.0 {
            return Err(EngineError::Params(dls_dlt::ParamError::InvalidCommRate(z)));
        }
        Ok(BatchWorkload {
            model,
            z,
            m,
            bids: Vec::new(),
            observed: Vec::new(),
        })
    }

    /// Appends one market. Both slices must have length `m` and hold
    /// finite, positive rates.
    pub fn push_market(&mut self, bids: &[f64], observed: &[f64]) -> Result<(), EngineError> {
        if bids.len() != self.m {
            return Err(EngineError::LengthMismatch {
                expected: self.m,
                got: bids.len(),
            });
        }
        if observed.len() != self.m {
            return Err(EngineError::LengthMismatch {
                expected: self.m,
                got: observed.len(),
            });
        }
        for (index, &value) in bids.iter().enumerate() {
            if !value.is_finite() || value <= 0.0 {
                return Err(EngineError::InvalidBid { index, value });
            }
        }
        for (index, &value) in observed.iter().enumerate() {
            if !value.is_finite() || value <= 0.0 {
                return Err(EngineError::InvalidObserved { index, value });
            }
        }
        self.bids.extend_from_slice(bids);
        self.observed.extend_from_slice(observed);
        Ok(())
    }

    /// The system model shared by every market in the batch.
    pub fn model(&self) -> SystemModel {
        self.model
    }

    /// The bus rate shared by every market in the batch.
    pub fn z(&self) -> f64 {
        self.z
    }

    /// Processors per market.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of markets currently in the batch.
    pub fn markets(&self) -> usize {
        self.bids.len() / self.m
    }

    /// Bid vector of market `k`.
    pub fn market_bids(&self, k: usize) -> Option<&[f64]> {
        self.bids.get(k * self.m..(k + 1) * self.m)
    }

    /// Observed-rate vector of market `k`.
    pub fn market_observed(&self, k: usize) -> Option<&[f64]> {
        self.observed.get(k * self.m..(k + 1) * self.m)
    }
}

/// Results for a whole batch, structure-of-arrays like the workload.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    m: usize,
    /// Optimal makespan of each market, in batch order.
    pub makespans: Vec<f64>,
    /// Concatenated payment vectors, `markets × m`.
    pub payments: Vec<Payment>,
}

impl BatchOutcome {
    /// Payments of market `k`.
    pub fn payments_for(&self, k: usize) -> Option<&[Payment]> {
        self.payments.get(k * self.m..(k + 1) * self.m)
    }
}

/// Fans a [`BatchWorkload`] across scoped worker threads, one engine per
/// worker.
#[derive(Debug, Clone, Copy)]
pub struct BatchAuctioneer {
    threads: usize,
}

impl BatchAuctioneer {
    /// An auctioneer using up to `threads` workers (clamped to at least 1;
    /// also clamped to the batch size at run time).
    pub fn new(threads: usize) -> Self {
        BatchAuctioneer {
            threads: threads.max(1),
        }
    }

    /// An auctioneer sized to the machine.
    pub fn from_available_parallelism() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        BatchAuctioneer::new(threads)
    }

    /// Evaluates every market in the batch: optimal makespan plus DLS-BL
    /// payments under the recorded observed rates. Deterministic — results
    /// are in batch order and bit-identical to running each market through
    /// its own [`AuctionEngine`] sequentially.
    pub fn run(&self, work: &BatchWorkload) -> Result<BatchOutcome, EngineError> {
        let n = work.markets();
        let m = work.m;
        let mut makespans: Vec<Option<f64>> = vec![None; n];
        let mut payments: Vec<Option<Payment>> = vec![None; n * m];
        let threads = self.threads.min(n.max(1));
        if threads <= 1 {
            run_chunk(work, 0, &mut makespans, &mut payments)?;
        } else {
            let chunk = n.div_ceil(threads);
            // `chunks_mut(chunk)` yields ceil(n/chunk) chunks, which is
            // *fewer* than `threads` when n doesn't tile evenly (n=5,
            // threads=4 -> chunk=2 -> 3 chunks), so status must be sized
            // by the real chunk count or trailing slots stay None and the
            // join loop reports a spurious BatchIncomplete.
            let chunks = n.div_ceil(chunk);
            let mut status: Vec<Option<Result<(), EngineError>>> = vec![None; chunks];
            std::thread::scope(|s| {
                let slots = makespans
                    .chunks_mut(chunk)
                    .zip(payments.chunks_mut(chunk * m))
                    .zip(status.iter_mut())
                    .enumerate();
                for (t, ((mk, pay), st)) in slots {
                    s.spawn(move || {
                        *st = Some(run_chunk(work, t * chunk, mk, pay));
                    });
                }
            });
            for st in status {
                st.unwrap_or(Err(EngineError::BatchIncomplete))?;
            }
        }
        let makespans: Vec<f64> = makespans.into_iter().flatten().collect();
        if makespans.len() != n {
            return Err(EngineError::BatchIncomplete);
        }
        let payments: Vec<Payment> = payments.into_iter().flatten().collect();
        if payments.len() != n * m {
            return Err(EngineError::BatchIncomplete);
        }
        Ok(BatchOutcome {
            m,
            makespans,
            payments,
        })
    }
}

/// Evaluates the markets `start..start + mk.len()` into the given slots,
/// reusing one engine for the whole chunk.
fn run_chunk(
    work: &BatchWorkload,
    start: usize,
    mk: &mut [Option<f64>],
    pay: &mut [Option<Payment>],
) -> Result<(), EngineError> {
    let m = work.m;
    let mut engine: Option<AuctionEngine> = None;
    for (off, slot) in mk.iter_mut().enumerate() {
        let k = start + off;
        let bids = work
            .market_bids(k)
            .ok_or(EngineError::BatchIncomplete)?;
        let observed = work
            .market_observed(k)
            .ok_or(EngineError::BatchIncomplete)?;
        let eng = match engine.as_mut() {
            Some(e) => {
                e.load_bids(bids)?;
                e
            }
            None => engine.insert(AuctionEngine::new(work.model, work.z, bids.to_vec())?),
        };
        *slot = Some(eng.optimal_makespan());
        let paid = eng.payments(observed)?;
        let dst = pay
            .get_mut(off * m..(off + 1) * m)
            .ok_or(EngineError::BatchIncomplete)?;
        for (d, p) in dst.iter_mut().zip(paid) {
            *d = Some(*p);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::market::compute_payments;
    use dls_dlt::{optimal, BusParams, ALL_MODELS};

    fn demo_workload(model: SystemModel, markets: usize) -> BatchWorkload {
        let m = 4;
        let mut work = BatchWorkload::new(model, 0.2, m).unwrap();
        for k in 0..markets {
            let bids: Vec<f64> = (0..m).map(|i| 1.0 + ((k + i) % 5) as f64 * 0.5).collect();
            // A couple of slackers per batch keep the payments non-trivial.
            let observed: Vec<f64> = bids
                .iter()
                .enumerate()
                .map(|(i, &b)| if (k + i) % 3 == 0 { b * 1.25 } else { b })
                .collect();
            work.push_market(&bids, &observed).unwrap();
        }
        work
    }

    #[test]
    fn batch_matches_sequential_one_shot_solvers() {
        for model in ALL_MODELS {
            let work = demo_workload(model, 13);
            for threads in [1, 4] {
                let out = BatchAuctioneer::new(threads).run(&work).unwrap();
                assert_eq!(out.makespans.len(), 13, "{model}");
                for k in 0..13 {
                    let bids = work.market_bids(k).unwrap();
                    let observed = work.market_observed(k).unwrap();
                    let params = BusParams::new(0.2, bids.to_vec()).unwrap();
                    let alloc = optimal::fractions(model, &params);
                    let expect_pay = compute_payments(model, &params, &alloc, observed);
                    assert_eq!(
                        out.payments_for(k).unwrap(),
                        expect_pay.as_slice(),
                        "{model} market {k} threads {threads}"
                    );
                    let expect_ms = optimal::optimal_makespan(model, &params);
                    // Makespans agree to the bit: the chain prefix form is
                    // certified against the generic solver in dls-dlt.
                    let got = out.makespans[k];
                    assert!(
                        (got - expect_ms).abs() <= 1e-12 * expect_ms,
                        "{model} market {k}: {got} vs {expect_ms}"
                    );
                }
            }
        }
    }

    /// Regression: when the batch doesn't tile evenly across workers,
    /// `chunks_mut` yields fewer chunks than threads (n=5, threads=4 ->
    /// chunk=2 -> 3 chunks). Status slots must be sized by the real chunk
    /// count, not the thread count, or `run` reports BatchIncomplete even
    /// though every market was evaluated.
    #[test]
    fn uneven_batches_complete() {
        for (markets, threads) in [(5, 4), (9, 8), (3, 64), (7, 2)] {
            let work = demo_workload(SystemModel::NcpFe, markets);
            let base = BatchAuctioneer::new(1).run(&work).unwrap();
            let out = BatchAuctioneer::new(threads)
                .run(&work)
                .unwrap_or_else(|e| panic!("n={markets} threads={threads}: {e}"));
            assert_eq!(out, base, "n={markets} threads={threads}");
        }
    }

    #[test]
    fn thread_counts_do_not_change_results() {
        let work = demo_workload(SystemModel::NcpNfe, 29);
        let base = BatchAuctioneer::new(1).run(&work).unwrap();
        for threads in [2, 3, 8, 64] {
            let out = BatchAuctioneer::new(threads).run(&work).unwrap();
            assert_eq!(out, base, "threads = {threads}");
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let work = BatchWorkload::new(SystemModel::Cp, 0.1, 3).unwrap();
        let out = BatchAuctioneer::new(4).run(&work).unwrap();
        assert!(out.makespans.is_empty());
        assert!(out.payments.is_empty());
    }

    #[test]
    fn workload_validation() {
        assert!(matches!(
            BatchWorkload::new(SystemModel::Cp, 0.1, 0),
            Err(EngineError::Params(_))
        ));
        assert!(matches!(
            BatchWorkload::new(SystemModel::Cp, f64::NAN, 3),
            Err(EngineError::Params(_))
        ));
        let mut work = BatchWorkload::new(SystemModel::Cp, 0.1, 3).unwrap();
        assert!(matches!(
            work.push_market(&[1.0, 2.0], &[1.0, 2.0, 3.0]),
            Err(EngineError::LengthMismatch { expected: 3, got: 2 })
        ));
        assert!(matches!(
            work.push_market(&[1.0, 2.0, -3.0], &[1.0, 2.0, 3.0]),
            Err(EngineError::InvalidBid { index: 2, .. })
        ));
        assert!(matches!(
            work.push_market(&[1.0, 2.0, 3.0], &[1.0, 0.0, 3.0]),
            Err(EngineError::InvalidObserved { index: 1, .. })
        ));
        assert_eq!(work.markets(), 0);
    }
}
