//! # `dls-mechanism` — the DLS-BL mechanism with verification
//!
//! Implements §3 of Carroll & Grosu (IPPS 2006), which restates the DLS-BL
//! compensation-and-bonus mechanism of Grosu & Carroll (ISPDC 2005):
//!
//! Each processor `P_i` is a *one-parameter agent* whose private type is its
//! true unit-processing time `t_i = w_i`. It reports a bid `b_i` (possibly
//! `≠ w_i`) and later *executes* at an observed rate `w̃_i ≥ w_i` (a
//! processor can pretend to be slower than it is, never faster). The
//! mechanism with verification:
//!
//! 1. computes the allocation `α(b)` with the optimal DLT algorithm for the
//!    system model (Algorithms 2.1/2.2);
//! 2. observes the per-processor execution times `φ_i = α_i·w̃_i` (a
//!    tamper-proof meter) and recovers `w̃_i = φ_i / α_i`;
//! 3. pays `Q_i(b, w̃) = C_i + B_i` where
//!    * `C_i = α_i(b)·w̃_i` — **compensation**, reimbursing the cost the
//!      processor actually incurred (`V_i = −α_i·w̃_i`), and
//!    * `B_i = T(α(b_{-i}), b_{-i}) − T(α(b), (b_{-i}, w̃_i))` — **bonus**,
//!      the processor's marginal contribution to reducing the total
//!      execution time, evaluated at its *observed* speed.
//!
//! The resulting utility is `U_i = Q_i + V_i = B_i`. Since the first bonus
//! term does not depend on `P_i` at all, maximizing `U_i` means minimizing
//! `T(α(b), (b_{-i}, w̃_i))` — which the agent achieves exactly by bidding
//! its true `w_i` and executing at full speed (Theorem 3.1,
//! strategyproofness). Truthful workers get `U_i ≥ 0` (Theorem 3.2,
//! voluntary participation).
//!
//! [`validate`] provides exhaustive-sweep checkers for both theorems, used
//! by the test-suite and by the experiment harness (experiments E6/E7).
//!
//! ```
//! use dls_dlt::SystemModel;
//! use dls_mechanism::{AgentSpec, Market};
//!
//! // Three truthful processors on a bus with z = 0.2.
//! let market = Market::new(
//!     SystemModel::NcpFe,
//!     0.2,
//!     vec![
//!         AgentSpec::truthful(1.0),
//!         AgentSpec::truthful(2.0),
//!         AgentSpec::truthful(3.0),
//!     ],
//! ).unwrap();
//! let outcome = market.run();
//! // Voluntary participation: truthful agents never lose.
//! for i in 0..3 {
//!     assert!(outcome.utility(i) >= -1e-12);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod engine;
pub mod exact;
mod market;
pub mod multiload;
pub mod validate;

pub use batch::{BatchAuctioneer, BatchOutcome, BatchReport, BatchWorkload, MarketFailure};
pub use engine::{AuctionEngine, EngineError, Evaluation};
pub use multiload::{MultiLoadEngine, MultiLoadMarket, MultiLoadOutcome, MultiMarketError};
pub use market::{
    compute_payments, compute_payments_into, compute_payments_naive, AgentSpec, Market,
    MarketError, MechanismOutcome, Payment, PaymentScratch,
};
