//! k-load auctions: one bid vector, `k` concurrent allocations,
//! cross-load payments and utilities.
//!
//! The single-load DLS-BL mechanism ([`crate::Market`]) auctions one
//! divisible load. In a multi-load session the same `m` processors serve
//! `k` loads (different volumes and bus intensities), and *one* report
//! `b_i` determines processor `i`'s allocation in **all** `k` markets at
//! once. Two consequences this module makes concrete:
//!
//! * **Amortization** — [`MultiLoadEngine`] keeps the `k` per-load chain
//!   states of [`InstallmentScheduler`] warm, so a bid revision costs one
//!   suffix splice per load and each load's O(m) leave-one-out payment
//!   vector ([`compute_payments_into`]) reuses the cached chain products.
//! * **Cross-load incentives** — a misreport shifts the processor's
//!   fraction in every load, so its session utility is the *sum* of the
//!   per-load utilities, `U_i = Σ_ℓ s_ℓ·(Q_i^ℓ − α_i^ℓ·w̃_i)`. Because
//!   each per-load mechanism is strategyproof for every fixed `b_{-i}`
//!   (Theorem 4.1) and the sum of functions maximized at `b_i = w_i` is
//!   maximized at `b_i = w_i`, truthful reporting still dominates; the
//!   `multiload_differential` suite pins this empirically on a misreport
//!   grid rather than taking the argument on faith.
//!
//! Payments are computed on the **normalized** (unit-volume) per-load
//! market and scaled by the load volume `s_ℓ` — payments in the DLS-BL
//! family are linear in load size, so `Payment { s·C, s·B }` is the
//! exact per-load payment and stays bit-comparable to
//! `compute_payments` on the same normalized inputs.
//!
//! This module is inside the workspace no-panic lint scope: all entry
//! points validate and return typed errors.

use crate::market::{
    compute_payments_into, AgentSpec, Market, MarketError, MechanismOutcome, Payment,
    PaymentScratch,
};
use dls_dlt::multiload::{InstallmentScheduler, LoadSpec, MultiLoadError, PipelineSchedule};
use dls_dlt::SystemModel;
use std::fmt;

/// Rejected multi-load market input.
#[derive(Debug, Clone, PartialEq)]
pub enum MultiMarketError {
    /// The per-load scheduler rejected the loads or the bid vector.
    Load(MultiLoadError),
    /// A per-load market rejected the agents.
    Market(MarketError),
    /// An observed execution vector had the wrong length.
    LengthMismatch {
        /// Expected length (`m`).
        expected: usize,
        /// Provided length.
        got: usize,
    },
    /// An observed execution rate that is not finite and positive.
    InvalidObserved {
        /// Offending processor (0-based).
        index: usize,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for MultiMarketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MultiMarketError::Load(e) => write!(f, "{e}"),
            MultiMarketError::Market(e) => write!(f, "{e}"),
            MultiMarketError::LengthMismatch { expected, got } => {
                write!(f, "expected a vector of length {expected}, got {got}")
            }
            MultiMarketError::InvalidObserved { index, value } => {
                write!(f, "observed rate w~[{index}] = {value} must be finite and > 0")
            }
        }
    }
}

impl std::error::Error for MultiMarketError {}

impl From<MultiLoadError> for MultiMarketError {
    fn from(e: MultiLoadError) -> Self {
        MultiMarketError::Load(e)
    }
}

impl From<MarketError> for MultiMarketError {
    fn from(e: MarketError) -> Self {
        MultiMarketError::Market(e)
    }
}

/// Incremental k-load auction engine: warm per-load chains, splice-cost
/// bid revisions, allocation-free per-load payment queries.
///
/// The multi-load analogue of [`crate::AuctionEngine`]; the
/// `BENCH_multiload.json` harness drives exactly this type.
#[derive(Debug, Clone)]
pub struct MultiLoadEngine {
    sched: InstallmentScheduler,
    /// Per-load allocation buffers, refreshed lazily after bid changes.
    alloc: Vec<Vec<f64>>,
    alloc_dirty: bool,
    scratch: PaymentScratch,
    payments: Vec<Payment>,
}

impl MultiLoadEngine {
    /// Builds the engine over a shared bid vector and `k` load specs.
    pub fn new(
        model: SystemModel,
        bids: &[f64],
        loads: &[LoadSpec],
    ) -> Result<Self, MultiMarketError> {
        let sched = InstallmentScheduler::new(model, bids, loads)?;
        let alloc = vec![Vec::new(); sched.k()];
        Ok(MultiLoadEngine {
            sched,
            alloc,
            alloc_dirty: true,
            scratch: PaymentScratch::default(),
            payments: Vec::new(),
        })
    }

    /// Number of processors `m`.
    pub fn m(&self) -> usize {
        self.sched.m()
    }

    /// Number of loads `k`.
    pub fn k(&self) -> usize {
        self.sched.k()
    }

    /// The load specifications.
    pub fn loads(&self) -> &[LoadSpec] {
        self.sched.loads()
    }

    /// The current shared bid vector.
    pub fn bids(&self) -> &[f64] {
        self.sched.bids()
    }

    /// Revises bid `i` across all `k` loads via per-load suffix splices —
    /// the O(k·(m − i)) hot path.
    pub fn submit_bid(&mut self, i: usize, bid: f64) -> Result<(), MultiMarketError> {
        self.sched.update_bid(i, bid)?;
        self.alloc_dirty = true;
        Ok(())
    }

    /// Revises bid `i` via `k` full chain rebuilds — the disclosed
    /// baseline; observable state bit-identical to
    /// [`MultiLoadEngine::submit_bid`].
    pub fn submit_bid_rebuild(&mut self, i: usize, bid: f64) -> Result<(), MultiMarketError> {
        self.sched.update_bid_rebuild(i, bid)?;
        self.alloc_dirty = true;
        Ok(())
    }

    fn refresh_alloc(&mut self) {
        if self.alloc_dirty {
            for (l, buf) in self.alloc.iter_mut().enumerate() {
                // Loads and alloc buffers are created together; the
                // index is always in range.
                let _ = self.sched.fractions_into(l, buf);
            }
            self.alloc_dirty = false;
        }
    }

    /// Standalone optimal makespan of load `load` under the current bids
    /// (volume-scaled) — the per-load quote, O(1) from cached products.
    pub fn load_makespan(&self, load: usize) -> Result<f64, MultiMarketError> {
        Ok(self.sched.load_makespan(load)?)
    }

    /// The session quote: the pipelined timeline of all `k` loads under
    /// the current bids.
    pub fn schedule(&self) -> PipelineSchedule {
        self.sched.schedule()
    }

    /// Allocation `α(b)` of load `load` (normalized fractions).
    pub fn fractions(&mut self, load: usize) -> Result<&[f64], MultiMarketError> {
        let k = self.k();
        self.refresh_alloc();
        self.alloc
            .get(load)
            .map(|v| v.as_slice())
            .ok_or(MultiMarketError::Load(MultiLoadError::LoadOutOfRange {
                load,
                k,
            }))
    }

    fn check_observed(&self, observed: &[f64]) -> Result<(), MultiMarketError> {
        let m = self.m();
        if observed.len() != m {
            return Err(MultiMarketError::LengthMismatch {
                expected: m,
                got: observed.len(),
            });
        }
        for (index, &value) in observed.iter().enumerate() {
            if !value.is_finite() || value <= 0.0 {
                return Err(MultiMarketError::InvalidObserved { index, value });
            }
        }
        Ok(())
    }

    /// Per-load DLS-BL payments for load `load` given the observed
    /// execution rates, scaled by the load volume. O(m) via the cached
    /// chain ([`compute_payments_into`]); `out` is overwritten.
    pub fn payments_into(
        &mut self,
        load: usize,
        observed: &[f64],
        out: &mut Vec<Payment>,
    ) -> Result<(), MultiMarketError> {
        self.check_observed(observed)?;
        self.refresh_alloc();
        let size = self
            .sched
            .loads()
            .get(load)
            .map(|s| s.size)
            .unwrap_or(f64::NAN);
        let k = self.k();
        let alloc = self
            .alloc
            .get(load)
            .ok_or(MultiMarketError::Load(MultiLoadError::LoadOutOfRange {
                load,
                k,
            }))?
            .clone();
        let chain = self.sched.chain_mut(load)?;
        compute_payments_into(chain, &alloc, observed, &mut self.scratch, &mut self.payments);
        out.clear();
        out.extend(self.payments.iter().map(|p| Payment {
            compensation: size * p.compensation,
            bonus: size * p.bonus,
        }));
        Ok(())
    }

    /// Cross-load session utilities: for every processor,
    /// `U_i = Σ_ℓ s_ℓ·(Q_i^ℓ − α_i^ℓ·w̃_i)` — payments minus execution
    /// cost, summed over all `k` loads the single report `b_i` touched.
    /// `out` is overwritten.
    pub fn utilities_into(
        &mut self,
        observed: &[f64],
        out: &mut Vec<f64>,
    ) -> Result<(), MultiMarketError> {
        self.check_observed(observed)?;
        let m = self.m();
        out.clear();
        out.resize(m, 0.0);
        let mut payments = Vec::with_capacity(m);
        for l in 0..self.k() {
            self.payments_into(l, observed, &mut payments)?;
            self.refresh_alloc();
            let size = self.sched.loads().get(l).map(|s| s.size).unwrap_or(0.0);
            let alloc = match self.alloc.get(l) {
                Some(a) => a,
                None => continue,
            };
            for ((u, p), (&a, &w)) in out
                .iter_mut()
                .zip(&payments)
                .zip(alloc.iter().zip(observed))
            {
                *u += p.total() - size * a * w;
            }
        }
        Ok(())
    }
}

/// A one-shot k-load market: `k` per-load DLS-BL markets over the same
/// agent reports, with session-level (cross-load) accounting.
#[derive(Debug, Clone)]
pub struct MultiLoadMarket {
    model: SystemModel,
    loads: Vec<LoadSpec>,
    agents: Vec<AgentSpec>,
}

impl MultiLoadMarket {
    /// Validates and constructs the market: the shared agents must form a
    /// valid single-load market at every load's bus intensity.
    pub fn new(
        model: SystemModel,
        loads: &[LoadSpec],
        agents: Vec<AgentSpec>,
    ) -> Result<Self, MultiMarketError> {
        if loads.is_empty() {
            return Err(MultiMarketError::Load(MultiLoadError::NoLoads));
        }
        let bids: Vec<f64> = agents.iter().map(|a| a.bid).collect();
        // One scheduler build validates every (z_ℓ, b) pair and the load
        // specs; Market::new re-validates agents per load below.
        let _ = InstallmentScheduler::new(model, &bids, loads)?;
        for spec in loads {
            let _ = Market::new(model, spec.z, agents.clone())?;
        }
        Ok(MultiLoadMarket {
            model,
            loads: loads.to_vec(),
            agents,
        })
    }

    /// The system model.
    pub fn model(&self) -> SystemModel {
        self.model
    }

    /// The load specifications.
    pub fn loads(&self) -> &[LoadSpec] {
        &self.loads
    }

    /// The agents.
    pub fn agents(&self) -> &[AgentSpec] {
        &self.agents
    }

    /// Runs all `k` per-load mechanisms and assembles the session
    /// outcome. Each per-load outcome is the *normalized* (unit-volume)
    /// [`Market::run`] result; session aggregates scale by volume.
    pub fn run(&self) -> Result<MultiLoadOutcome, MultiMarketError> {
        let mut per_load = Vec::with_capacity(self.loads.len());
        for spec in &self.loads {
            let market = Market::new(self.model, spec.z, self.agents.clone())?;
            per_load.push(market.run());
        }
        let bids: Vec<f64> = self.agents.iter().map(|a| a.bid).collect();
        let pipeline = dls_dlt::multiload::pipeline_schedule(self.model, &bids, &self.loads)?;
        Ok(MultiLoadOutcome {
            loads: self.loads.clone(),
            per_load,
            pipeline,
        })
    }
}

/// Result of a k-load session auction.
#[derive(Debug, Clone)]
pub struct MultiLoadOutcome {
    /// The load specifications (volumes scale the per-load outcomes).
    pub loads: Vec<LoadSpec>,
    /// Normalized per-load mechanism outcomes, in load order.
    pub per_load: Vec<MechanismOutcome>,
    /// The planned pipelined timeline under the reported bids.
    pub pipeline: PipelineSchedule,
}

impl MultiLoadOutcome {
    /// Number of loads `k`.
    pub fn k(&self) -> usize {
        self.loads.len()
    }

    /// Processor `i`'s session utility: volume-weighted sum of its
    /// per-load utilities, `U_i = Σ_ℓ s_ℓ·U_i^ℓ`. Returns `None` for an
    /// out-of-range processor.
    pub fn utility(&self, i: usize) -> Option<f64> {
        let m = self.per_load.first()?.alloc.len();
        if i >= m {
            return None;
        }
        Some(
            self.loads
                .iter()
                .zip(&self.per_load)
                .map(|(spec, out)| spec.size * out.utility(i))
                .sum(),
        )
    }

    /// Total user bill across all loads: `Σ_ℓ s_ℓ·Σ_i Q_i^ℓ`.
    pub fn user_bill(&self) -> f64 {
        self.loads
            .iter()
            .zip(&self.per_load)
            .map(|(spec, out)| spec.size * out.user_bill())
            .sum()
    }

    /// Session social cost: the pipelined makespan of the planned
    /// timeline (the quantity multi-load scheduling minimizes; see the
    /// dlt module docs for why it has no closed form).
    pub fn social_cost(&self) -> f64 {
        self.pipeline.makespan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::market::compute_payments;
    use dls_dlt::{BusParams, ALL_MODELS};

    fn loads() -> Vec<LoadSpec> {
        vec![
            LoadSpec::new(1.0, 0.25),
            LoadSpec::new(0.5, 0.125),
            LoadSpec::new(2.0, 0.5),
        ]
    }

    fn rates() -> Vec<f64> {
        vec![1.0, 2.5, 0.8, 3.2]
    }

    #[test]
    fn engine_payments_match_reference_scaled_bitwise() {
        for model in ALL_MODELS {
            let bids = rates();
            let mut engine = MultiLoadEngine::new(model, &bids, &loads()).unwrap();
            engine.submit_bid(2, 1.9).unwrap();
            let bids_now: Vec<f64> = engine.bids().to_vec();
            let observed = bids_now.clone();
            let mut got = Vec::new();
            for (l, spec) in loads().iter().enumerate() {
                engine.payments_into(l, &observed, &mut got).unwrap();
                let params = BusParams::new(spec.z, bids_now.clone()).unwrap();
                let alloc = dls_dlt::optimal::fractions(model, &params);
                let reference = compute_payments(model, &params, &alloc, &observed);
                assert_eq!(got.len(), reference.len());
                for (g, r) in got.iter().zip(&reference) {
                    assert_eq!(
                        g.compensation.to_bits(),
                        (spec.size * r.compensation).to_bits(),
                        "{model} load {l}"
                    );
                    assert_eq!(
                        g.bonus.to_bits(),
                        (spec.size * r.bonus).to_bits(),
                        "{model} load {l}"
                    );
                }
            }
        }
    }

    #[test]
    fn market_utility_is_volume_weighted_sum() {
        for model in ALL_MODELS {
            let agents: Vec<AgentSpec> = rates().iter().map(|&w| AgentSpec::truthful(w)).collect();
            let market = MultiLoadMarket::new(model, &loads(), agents).unwrap();
            let out = market.run().unwrap();
            for i in 0..rates().len() {
                let manual: f64 = loads()
                    .iter()
                    .zip(&out.per_load)
                    .map(|(s, o)| s.size * o.utility(i))
                    .sum();
                assert_eq!(out.utility(i).unwrap().to_bits(), manual.to_bits(), "{model}");
            }
            assert!(out.utility(99).is_none());
            assert!(out.user_bill() > 0.0, "{model}");
            assert!(out.social_cost() > 0.0, "{model}");
            assert!(
                out.social_cost() <= out.pipeline.sequential_makespan + 1e-12,
                "{model}"
            );
        }
    }

    #[test]
    fn truthful_dominates_misreports_across_all_loads() {
        // Coarse in-crate grid; the integration suite runs the dense one.
        let true_w = rates();
        for model in ALL_MODELS {
            for victim in [0usize, 2] {
                let truthful: Vec<AgentSpec> =
                    true_w.iter().map(|&w| AgentSpec::truthful(w)).collect();
                let honest = MultiLoadMarket::new(model, &loads(), truthful)
                    .unwrap()
                    .run()
                    .unwrap()
                    .utility(victim)
                    .unwrap();
                for factor in [0.7, 0.9, 1.1, 1.6] {
                    let mut agents: Vec<AgentSpec> =
                        true_w.iter().map(|&w| AgentSpec::truthful(w)).collect();
                    agents[victim] = AgentSpec::misreporting(true_w[victim], factor);
                    let lied = MultiLoadMarket::new(model, &loads(), agents)
                        .unwrap()
                        .run()
                        .unwrap()
                        .utility(victim)
                        .unwrap();
                    assert!(
                        honest >= lied - 1e-9,
                        "{model} victim {victim} factor {factor}: {honest} < {lied}"
                    );
                }
            }
        }
    }

    #[test]
    fn engine_utilities_match_market_for_truthful_agents() {
        for model in ALL_MODELS {
            let agents: Vec<AgentSpec> = rates().iter().map(|&w| AgentSpec::truthful(w)).collect();
            let market = MultiLoadMarket::new(model, &loads(), agents).unwrap();
            let out = market.run().unwrap();
            let mut engine = MultiLoadEngine::new(model, &rates(), &loads()).unwrap();
            let mut utils = Vec::new();
            engine.utilities_into(&rates(), &mut utils).unwrap();
            for (i, &u) in utils.iter().enumerate() {
                let reference = out.utility(i).unwrap();
                assert!(
                    (u - reference).abs() <= 1e-12 * reference.abs().max(1.0),
                    "{model} i={i}: {u} vs {reference}"
                );
            }
        }
    }

    #[test]
    fn typed_errors_cover_bad_inputs() {
        let mut engine =
            MultiLoadEngine::new(dls_dlt::SystemModel::Cp, &rates(), &loads()).unwrap();
        assert!(matches!(
            engine.submit_bid(99, 1.0),
            Err(MultiMarketError::Load(MultiLoadError::IndexOutOfRange { .. }))
        ));
        let mut out = Vec::new();
        assert!(matches!(
            engine.payments_into(0, &[1.0], &mut out),
            Err(MultiMarketError::LengthMismatch { expected: 4, got: 1 })
        ));
        assert!(matches!(
            engine.payments_into(0, &[1.0, -2.0, 1.0, 1.0], &mut out),
            Err(MultiMarketError::InvalidObserved { index: 1, .. })
        ));
        assert!(matches!(
            engine.payments_into(9, &rates(), &mut out),
            Err(MultiMarketError::Load(MultiLoadError::LoadOutOfRange { .. }))
        ));
        assert!(MultiLoadMarket::new(dls_dlt::SystemModel::Cp, &[], vec![]).is_err());
    }
}
