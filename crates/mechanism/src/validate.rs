//! Exhaustive-sweep validators for the mechanism's two headline properties.
//!
//! These are *measurement* tools, not proofs: they discretize the strategy
//! space of one agent (bid factor × execution factor) and check that no
//! grid point beats truthful play. The test-suite runs them on random
//! markets; the experiment harness uses them to regenerate the
//! strategyproofness and voluntary-participation evidence (E6/E7).

use crate::market::{AgentSpec, Market, MarketError};
use dls_dlt::SystemModel;

/// One probed deviation and the utility it produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbePoint {
    /// Multiplier applied to the true `w_i` to form the bid.
    pub bid_factor: f64,
    /// Multiplier applied to `max(bid, w_i)`-independent true rate to form
    /// the execution rate (always ≥ 1: processors cannot overclock).
    pub exec_factor: f64,
    /// Resulting utility for the probed agent.
    pub utility: f64,
}

/// Outcome of a strategyproofness sweep for one agent.
#[derive(Debug, Clone)]
pub struct StrategyproofReport {
    /// Index of the probed agent.
    pub agent: usize,
    /// Utility under truthful play (`bid_factor = exec_factor = 1`).
    pub truthful_utility: f64,
    /// Every probed deviation.
    pub probes: Vec<ProbePoint>,
    /// The best deviation found (max utility among probes).
    pub best_deviation: ProbePoint,
}

impl StrategyproofReport {
    /// `true` iff no probed deviation beats truthful play by more than
    /// `tol` (absolute).
    pub fn holds(&self, tol: f64) -> bool {
        self.best_deviation.utility <= self.truthful_utility + tol
    }

    /// How much the best deviation gains over truth (positive would violate
    /// strategyproofness).
    pub fn max_gain(&self) -> f64 {
        self.best_deviation.utility - self.truthful_utility
    }
}

/// Default multiplicative grid for bids: ×0.25 … ×4.
pub fn default_bid_factors() -> Vec<f64> {
    vec![0.25, 0.4, 0.5, 0.7, 0.85, 0.95, 1.0, 1.05, 1.2, 1.5, 2.0, 3.0, 4.0]
}

/// Default multiplicative grid for execution slow-down: ×1 … ×4.
pub fn default_exec_factors() -> Vec<f64> {
    vec![1.0, 1.1, 1.5, 2.0, 3.0, 4.0]
}

/// Sweeps agent `agent`'s strategy space while everyone else plays
/// truthfully, returning the utilities of every probed deviation.
///
/// `true_w` are the private types; the probed agent bids
/// `bid_factor·w_i` and executes at `exec_factor·w_i` (clamped up to its
/// bid-independent physical floor `w_i`).
pub fn sweep_strategyproof(
    model: SystemModel,
    z: f64,
    true_w: &[f64],
    agent: usize,
    bid_factors: &[f64],
    exec_factors: &[f64],
) -> Result<StrategyproofReport, MarketError> {
    assert!(agent < true_w.len(), "agent index out of range");
    let run_with = |bid_factor: f64, exec_factor: f64| -> Result<f64, MarketError> {
        let agents: Vec<AgentSpec> = true_w
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                if i == agent {
                    AgentSpec {
                        true_w: w,
                        bid: w * bid_factor,
                        exec_w: w * exec_factor.max(1.0),
                    }
                } else {
                    AgentSpec::truthful(w)
                }
            })
            .collect();
        Ok(Market::new(model, z, agents)?.run().utility(agent))
    };

    let truthful_utility = run_with(1.0, 1.0)?;
    let mut probes = Vec::with_capacity(bid_factors.len() * exec_factors.len());
    for &bf in bid_factors {
        for &ef in exec_factors {
            probes.push(ProbePoint {
                bid_factor: bf,
                exec_factor: ef,
                utility: run_with(bf, ef)?,
            });
        }
    }
    let best_deviation = *probes
        .iter()
        .max_by(|a, b| a.utility.total_cmp(&b.utility))
        .expect("non-empty grids");
    Ok(StrategyproofReport {
        agent,
        truthful_utility,
        probes,
        best_deviation,
    })
}

/// Outcome of a coalition probe: the coalition's members, their joint
/// utility under the probed deviation, and under all-truthful play.
#[derive(Debug, Clone)]
pub struct CoalitionReport {
    /// Members of the coalition (agent indices).
    pub members: Vec<usize>,
    /// Sum of members' utilities when all members apply `bid_factor`.
    pub coalition_utility: f64,
    /// Sum of members' utilities under truthful play by everyone.
    pub truthful_utility: f64,
}

impl CoalitionReport {
    /// Net gain of the coalition over truth-telling (positive would mean
    /// a profitable joint manipulation).
    pub fn gain(&self) -> f64 {
        self.coalition_utility - self.truthful_utility
    }
}

/// Probes a *coalition* deviation: every member of `members` scales its bid
/// by `bid_factor` simultaneously (non-members stay truthful; everyone
/// executes at full speed). DLS-BL is strategyproof for unilateral
/// deviations (Theorem 3.1); this measures how it fares against joint
/// manipulations — an extension beyond the paper's analysis.
pub fn probe_coalition(
    model: SystemModel,
    z: f64,
    true_w: &[f64],
    members: &[usize],
    bid_factor: f64,
) -> Result<CoalitionReport, MarketError> {
    assert!(
        members.iter().all(|&i| i < true_w.len()),
        "coalition member out of range"
    );
    let build = |deviate: bool| -> Result<Vec<f64>, MarketError> {
        let agents: Vec<AgentSpec> = true_w
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                if deviate && members.contains(&i) {
                    AgentSpec {
                        true_w: w,
                        bid: w * bid_factor,
                        exec_w: w,
                    }
                } else {
                    AgentSpec::truthful(w)
                }
            })
            .collect();
        let out = Market::new(model, z, agents)?.run();
        Ok((0..true_w.len()).map(|i| out.utility(i)).collect())
    };
    let truthful = build(false)?;
    let deviant = build(true)?;
    let sum = |u: &[f64]| members.iter().map(|&i| u[i]).sum::<f64>();
    Ok(CoalitionReport {
        members: members.to_vec(),
        coalition_utility: sum(&deviant),
        truthful_utility: sum(&truthful),
    })
}

/// Checks voluntary participation on an all-truthful market: returns the
/// per-agent utilities; every *worker* (non-originator) must be ≥ 0.
pub fn participation_utilities(
    model: SystemModel,
    z: f64,
    true_w: &[f64],
) -> Result<Vec<f64>, MarketError> {
    let agents = true_w.iter().map(|&w| AgentSpec::truthful(w)).collect();
    let out = Market::new(model, z, agents)?.run();
    Ok((0..true_w.len()).map(|i| out.utility(i)).collect())
}

/// `true` iff voluntary participation holds for every worker in the
/// all-truthful market (originator exempt in the NCP models — it holds the
/// load and cannot decline).
pub fn participation_holds(
    model: SystemModel,
    z: f64,
    true_w: &[f64],
    tol: f64,
) -> Result<bool, MarketError> {
    let utilities = participation_utilities(model, z, true_w)?;
    let orig = model.originator(true_w.len());
    Ok(utilities
        .iter()
        .enumerate()
        .all(|(i, &u)| Some(i) == orig || u >= -tol))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_dlt::ALL_MODELS;

    const W: [f64; 4] = [1.0, 2.5, 1.5, 3.0];
    const Z: f64 = 0.3;

    #[test]
    fn strategyproof_on_fixed_market_all_models_all_agents() {
        for model in ALL_MODELS {
            for agent in 0..W.len() {
                let report = sweep_strategyproof(
                    model,
                    Z,
                    &W,
                    agent,
                    &default_bid_factors(),
                    &default_exec_factors(),
                )
                .unwrap();
                assert!(
                    report.holds(1e-9),
                    "{model} agent {agent}: gain {}",
                    report.max_gain()
                );
            }
        }
    }

    #[test]
    fn truthful_is_a_probe_point() {
        let report = sweep_strategyproof(
            SystemModel::Cp,
            Z,
            &W,
            0,
            &default_bid_factors(),
            &default_exec_factors(),
        )
        .unwrap();
        let truthful_probe = report
            .probes
            .iter()
            .find(|p| p.bid_factor == 1.0 && p.exec_factor == 1.0)
            .expect("grid contains the truthful point");
        assert!((truthful_probe.utility - report.truthful_utility).abs() < 1e-12);
    }

    #[test]
    fn participation_holds_on_fixed_market() {
        for model in ALL_MODELS {
            assert!(participation_holds(model, Z, &W, 1e-9).unwrap(), "{model}");
        }
    }

    #[test]
    fn participation_utilities_match_market() {
        let u = participation_utilities(SystemModel::Cp, Z, &W).unwrap();
        assert_eq!(u.len(), 4);
        // CP has no originator among the agents: all must be ≥ 0.
        assert!(u.iter().all(|&x| x >= -1e-9));
    }

    #[test]
    fn probe_count_matches_grids() {
        let bf = default_bid_factors();
        let ef = default_exec_factors();
        let report =
            sweep_strategyproof(SystemModel::NcpFe, Z, &W, 1, &bf, &ef).unwrap();
        assert_eq!(report.probes.len(), bf.len() * ef.len());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn agent_bounds_checked() {
        let _ = sweep_strategyproof(SystemModel::Cp, Z, &W, 9, &[1.0], &[1.0]);
    }

    #[test]
    fn pair_coalitions_do_not_profit_on_this_market() {
        // Unilateral strategyproofness (Theorem 3.1) does NOT imply group
        // strategyproofness; on this particular market no probed pair
        // profits, but see `dls_bl_is_not_group_strategyproof` below.
        for model in ALL_MODELS {
            for pair in [[0usize, 1], [1, 2], [0, 3]] {
                for factor in [0.5, 0.8, 1.25, 2.0] {
                    let r = probe_coalition(model, Z, &W, &pair, factor).unwrap();
                    assert!(
                        r.gain() <= 1e-9,
                        "{model} {pair:?} x{factor}: coalition gains {}",
                        r.gain()
                    );
                }
            }
        }
    }

    #[test]
    fn dls_bl_is_not_group_strategyproof() {
        // Regression-captured finding (experiment E15): on this market the
        // two fastest processors jointly over-reporting by 1.5x increase
        // their JOINT utility — DLS-BL's dominant-strategy guarantee is
        // strictly unilateral. (Each member individually still does no
        // better than truth given the other's lie would persist — this is
        // a correlated deviation.)
        let w = [0.8, 1.3, 1.9, 2.6, 3.4];
        let r = probe_coalition(SystemModel::NcpFe, 0.3, &w, &[0, 1], 1.5).unwrap();
        assert!(
            r.gain() > 1e-3,
            "expected a profitable coalition, got gain {}",
            r.gain()
        );
    }

    #[test]
    fn trivial_coalition_matches_unilateral_probe() {
        let r = probe_coalition(SystemModel::Cp, Z, &W, &[2], 1.5).unwrap();
        let s = sweep_strategyproof(SystemModel::Cp, Z, &W, 2, &[1.5], &[1.0]).unwrap();
        assert!((r.coalition_utility - s.probes[0].utility).abs() < 1e-12);
        assert!((r.truthful_utility - s.truthful_utility).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "member out of range")]
    fn coalition_bounds_checked() {
        let _ = probe_coalition(SystemModel::Cp, Z, &W, &[9], 1.5);
    }
}
