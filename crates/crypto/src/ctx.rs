//! Per-key Montgomery contexts and the per-session verification cache.
//!
//! Every RSA operation is a modular exponentiation over a fixed per-key
//! modulus, and every key performs many of them (a session verifies Θ(m²)
//! envelopes under m keys). The contexts here hoist everything that depends
//! only on the key out of the per-call path:
//!
//! * [`VerifyCtx`] / [`SignCtx`] — a shared [`MontgomeryCtx`] for the
//!   modulus `n` (one per key pair, `Arc`-shared between the halves) plus
//!   the fixed-window schedule for the key's exponent, both built once at
//!   key construction in [`crate::rsa::generate`].
//! * [`VerifyCache`] — a session-scoped memo of envelope-verification
//!   verdicts keyed by a digest of (signer, body bytes, signature), so the
//!   all-to-all broadcast verifies each envelope once instead of once per
//!   receiver. Sound because verification is deterministic: the same bytes
//!   under the same registry always yield the same verdict.

use crate::sha256;
use dls_num::{BigUint, ExpWindows, MontgomeryCtx};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Precomputed state for modular exponentiation under one fixed exponent.
///
/// Holds the modulus's Montgomery context (shared across the key pair) and
/// the window schedule of the exponent. Building one costs a handful of
/// Montgomery multiplies; every subsequent [`pow`](ExpCtx::pow) saves a
/// Knuth-D division per multiply relative to `modmath::pow_mod`.
#[derive(Debug, Clone)]
pub struct ExpCtx {
    mont: Arc<MontgomeryCtx>,
    windows: ExpWindows,
}

impl ExpCtx {
    /// Builds a context for `exp` under the (odd, > 1) modulus in `mont`.
    pub fn new(mont: Arc<MontgomeryCtx>, exp: &BigUint) -> Self {
        ExpCtx {
            windows: ExpWindows::new(exp),
            mont,
        }
    }

    /// `base^exp mod n` — bit-identical to `modmath::pow_mod` on the same
    /// inputs (the Montgomery differential suites pin this down).
    pub fn pow(&self, base: &BigUint) -> BigUint {
        self.mont.pow_windows(base, &self.windows)
    }

    /// The shared Montgomery context for the modulus.
    pub fn montgomery(&self) -> &Arc<MontgomeryCtx> {
        &self.mont
    }
}

/// Per-key verification context: the public exponent's [`ExpCtx`].
pub type VerifyCtx = ExpCtx;

/// Per-key signing context: the private exponent's [`ExpCtx`].
pub type SignCtx = ExpCtx;

/// Cache key: a SHA-256 digest binding signer identity, canonical body
/// bytes, and signature bytes (length-prefixed, so field boundaries cannot
/// be confused).
pub type VerdictKey = [u8; 32];

/// Computes the [`VerdictKey`] for an envelope's constituent bytes.
pub fn verdict_key(signer: &str, body_bytes: &[u8], signature: &[u8]) -> VerdictKey {
    let mut h = sha256::Sha256::new();
    h.update(&(signer.len() as u64).to_be_bytes());
    h.update(signer.as_bytes());
    h.update(&(body_bytes.len() as u64).to_be_bytes());
    h.update(body_bytes);
    h.update(&(signature.len() as u64).to_be_bytes());
    h.update(signature);
    h.finalize()
}

/// A session-scoped memo of envelope-verification verdicts.
///
/// Cheap to clone (shared map) so every processor role in a session can
/// hold one; whoever verifies an envelope first pays the modexp and every
/// later receiver of the same bytes gets the memoized verdict. Verdicts are
/// only valid under the registry the session was built with, so the cache
/// must not outlive its session.
#[derive(Debug, Clone, Default)]
pub struct VerifyCache {
    verdicts: Arc<Mutex<BTreeMap<VerdictKey, bool>>>,
}

impl VerifyCache {
    /// A fresh, empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The memoized verdict for `key`, if any receiver has verified these
    /// bytes before.
    pub fn get(&self, key: &VerdictKey) -> Option<bool> {
        self.verdicts.lock().expect("verdict cache poisoned").get(key).copied()
    }

    /// Records the verdict for `key`.
    pub fn insert(&self, key: VerdictKey, verdict: bool) {
        self.verdicts.lock().expect("verdict cache poisoned").insert(key, verdict);
    }

    /// Number of distinct envelopes verified so far.
    pub fn len(&self) -> usize {
        self.verdicts.lock().expect("verdict cache poisoned").len()
    }

    /// `true` iff no verdicts have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_num::modmath;

    #[test]
    fn exp_ctx_matches_pow_mod() {
        let n = BigUint::from_dec_str("1000000000000000003").unwrap(); // prime
        let mont = Arc::new(MontgomeryCtx::new(&n).unwrap());
        let e = BigUint::from(65_537u32);
        let ctx = ExpCtx::new(Arc::clone(&mont), &e);
        for base in [2u64, 17, 999_999_999_999_999_999] {
            let b = BigUint::from(base);
            assert_eq!(ctx.pow(&b), modmath::pow_mod(&b, &e, &n), "base {base}");
        }
    }

    #[test]
    fn verdict_keys_separate_fields() {
        // Moving a byte across a field boundary must change the key.
        let a = verdict_key("P1", b"ab", b"c");
        let b = verdict_key("P1", b"a", b"bc");
        let c = verdict_key("P1a", b"b", b"c");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, verdict_key("P1", b"ab", b"c"));
    }

    #[test]
    fn cache_memoizes() {
        let cache = VerifyCache::new();
        let k = verdict_key("P1", b"body", b"sig");
        assert!(cache.is_empty());
        assert_eq!(cache.get(&k), None);
        cache.insert(k, true);
        assert_eq!(cache.get(&k), Some(true));
        assert_eq!(cache.len(), 1);
        // Clones share the same verdict map.
        let clone = cache.clone();
        let k2 = verdict_key("P2", b"body", b"sig");
        clone.insert(k2, false);
        assert_eq!(cache.get(&k2), Some(false));
        assert_eq!(cache.len(), 2);
    }
}
