//! Primality testing and prime generation for the RSA substrate.

use dls_num::{BigUint, ExpWindows, MontgomeryCtx};
use rand::Rng;

/// Small primes used for fast trial division before Miller–Rabin.
const SMALL_PRIMES: [u32; 54] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89,
    97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191,
    193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251,
];

/// Deterministic Miller–Rabin witness set, sufficient for all
/// `n < 3.317e24` (Sorenson & Webster); used in addition to random bases so
/// small inputs are decided *exactly*.
const DETERMINISTIC_BASES: [u32; 13] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41];

/// Number of random Miller–Rabin rounds for large candidates
/// (error probability ≤ 4^-24 per candidate).
const RANDOM_ROUNDS: usize = 24;

/// Returns `true` iff `n` is (very probably) prime.
///
/// Exact for `n < 3.3e24` via a deterministic witness set; probabilistic
/// (error ≤ 4⁻²⁴) above that.
pub fn is_prime(n: &BigUint, rng: &mut impl Rng) -> bool {
    if n < &BigUint::from(2u32) {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let bp = BigUint::from(p);
        if n == &bp {
            return true;
        }
        if (n % &bp).is_zero() {
            return false;
        }
    }

    // n-1 = d · 2^s with d odd.
    let one = BigUint::one();
    let n_minus_1 = n - &one;
    let s = trailing_zeros(&n_minus_1);
    let d = &n_minus_1 >> s;

    let deterministic = n.bits() <= 82; // 3.3e24 < 2^82
    let witnesses: Vec<BigUint> = if deterministic {
        DETERMINISTIC_BASES.iter().map(|&b| BigUint::from(b)).collect()
    } else {
        (0..RANDOM_ROUNDS)
            .map(|_| random_below(rng, &(n - &BigUint::from(3u32))) + BigUint::from(2u32))
            .collect()
    };

    // One Montgomery context per candidate (n survived the small-prime
    // sieve, so it is odd and > 2) and one window schedule for the shared
    // exponent d, reused across every witness round. All comparisons stay
    // in the Montgomery domain: the representation is a bijection on
    // [0, n), so vector equality is value equality.
    let ctx = MontgomeryCtx::new(n).expect("sieved candidate is odd and > 1");
    let d_windows = ExpWindows::new(&d);
    let one_m = ctx.to_mont(&one);
    let n_minus_1_m = ctx.to_mont(&n_minus_1);

    'witness: for a in witnesses {
        let a = &a % n;
        if a.is_zero() || a.is_one() {
            continue;
        }
        let mut x = ctx.pow_to_mont(&ctx.to_mont(&a), &d_windows);
        if x == one_m || x == n_minus_1_m {
            continue;
        }
        for _ in 0..s.saturating_sub(1) {
            x = ctx.mul(&x, &x);
            if x == n_minus_1_m {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

fn trailing_zeros(n: &BigUint) -> usize {
    debug_assert!(!n.is_zero());
    let mut i = 0;
    while !n.bit(i) {
        i += 1;
    }
    i
}

/// Uniform random value in `[0, bound)`.
///
/// # Panics
/// Panics if `bound` is zero.
pub fn random_below(rng: &mut impl Rng, bound: &BigUint) -> BigUint {
    assert!(!bound.is_zero(), "empty range");
    let bits = bound.bits();
    loop {
        let v = random_bits(rng, bits);
        if &v < bound {
            return v;
        }
    }
}

/// Random value with exactly `bits` random low bits (top bits not forced).
pub fn random_bits(rng: &mut impl Rng, bits: usize) -> BigUint {
    let limbs = bits.div_ceil(32);
    let mut v: Vec<u32> = (0..limbs).map(|_| rng.gen()).collect();
    let extra = limbs * 32 - bits;
    if extra > 0 {
        if let Some(top) = v.last_mut() {
            *top &= u32::MAX >> extra;
        }
    }
    BigUint::from_limbs_le(v)
}

/// Generates a random prime with exactly `bits` significant bits.
///
/// Top two bits are forced to 1 (so the product of two such primes has the
/// full `2·bits` length — the usual RSA convention) and the low bit is 1.
///
/// # Panics
/// Panics if `bits < 8`.
pub fn gen_prime(bits: usize, rng: &mut impl Rng) -> BigUint {
    assert!(bits >= 8, "prime too small to be useful");
    loop {
        let mut candidate = random_bits(rng, bits);
        candidate.set_bit(bits - 1, true);
        candidate.set_bit(bits - 2, true);
        candidate.set_bit(0, true);
        if is_prime(&candidate, rng) {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn small_primes_recognized() {
        let mut r = rng();
        for p in SMALL_PRIMES {
            assert!(is_prime(&BigUint::from(p), &mut r), "{p}");
        }
    }

    #[test]
    fn small_composites_rejected() {
        let mut r = rng();
        for c in [0u32, 1, 4, 6, 8, 9, 100, 561, 1105, 1729, 2465, 6601, 8911] {
            // includes the first Carmichael numbers
            assert!(!is_prime(&BigUint::from(c), &mut r), "{c}");
        }
    }

    #[test]
    fn known_large_primes() {
        let mut r = rng();
        // Mersenne primes 2^61-1, 2^89-1, 2^107-1.
        for e in [61usize, 89, 107] {
            let p = &(BigUint::one() << e) - &BigUint::one();
            assert!(is_prime(&p, &mut r), "2^{e}-1");
        }
        // 2^67-1 is famously composite (193707721 × 761838257287).
        let c = &(BigUint::one() << 67usize) - &BigUint::one();
        assert!(!is_prime(&c, &mut r));
    }

    #[test]
    fn known_rsa_style_semiprime_rejected() {
        let mut r = rng();
        let p = &(BigUint::one() << 61usize) - &BigUint::one();
        let q = &(BigUint::one() << 89usize) - &BigUint::one();
        assert!(!is_prime(&(&p * &q), &mut r));
    }

    #[test]
    fn gen_prime_properties() {
        let mut r = rng();
        for bits in [32usize, 64, 128] {
            let p = gen_prime(bits, &mut r);
            assert_eq!(p.bits(), bits, "requested {bits} bits");
            assert!(p.bit(bits - 2), "top-2 bit forced");
            assert!(!p.is_even());
            assert!(is_prime(&p, &mut r));
        }
    }

    #[test]
    fn random_below_in_range() {
        let mut r = rng();
        let bound = BigUint::from(1000u32);
        for _ in 0..200 {
            assert!(random_below(&mut r, &bound) < bound);
        }
    }

    #[test]
    fn random_bits_bounded() {
        let mut r = rng();
        for bits in [1usize, 31, 32, 33, 100] {
            for _ in 0..20 {
                assert!(random_bits(&mut r, bits).bits() <= bits);
            }
        }
    }
}
