//! Textbook RSA signatures over SHA-256 digests.
//!
//! **Simulation-grade.** The mechanism needs signatures that are unforgeable
//! *within the simulation* and verifiable by third parties (the referee uses
//! them as evidence of equivocation, Lemma 5.2). It does not need resistance
//! to real-world adversaries, so we use small default moduli for speed and a
//! simplified EMSA-PKCS#1-v1.5 padding (no ASN.1 `DigestInfo` prefix).

use crate::ctx::{ExpCtx, SignCtx, VerifyCtx};
use crate::sha256::{self, Digest};
use dls_num::{gcd, modmath, BigUint, MontgomeryCtx};
use rand::Rng;
use std::fmt;
use std::sync::Arc;

/// Default modulus size in bits. Small on purpose: sessions create one key
/// pair per processor and property tests create many.
pub const DEFAULT_MODULUS_BITS: usize = 512;

/// Smallest supported modulus: padding needs `3 + 8 + 32` bytes minimum.
pub const MIN_MODULUS_BITS: usize = 384;

/// Fixed public exponent (F4).
const PUBLIC_EXPONENT: u32 = 65_537;

/// Errors from key generation and signing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsaError {
    /// Requested modulus below [`MIN_MODULUS_BITS`].
    ModulusTooSmall {
        /// Requested bit size.
        requested: usize,
    },
}

impl fmt::Display for RsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsaError::ModulusTooSmall { requested } => write!(
                f,
                "modulus of {requested} bits is below the minimum of {MIN_MODULUS_BITS}"
            ),
        }
    }
}

impl std::error::Error for RsaError {}

/// RSA public key `(n, e)` with its prebuilt [`VerifyCtx`].
///
/// The context (Montgomery constants for `n`, window schedule for `e`) is
/// derived data: identity, equality, and hashing consider only `(n, e)`.
#[derive(Clone)]
pub struct PublicKey {
    n: BigUint,
    e: BigUint,
    ctx: Arc<VerifyCtx>,
}

impl PartialEq for PublicKey {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.e == other.e
    }
}

impl Eq for PublicKey {}

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Skip the derived Montgomery constants; (n, e) is the identity.
        f.debug_struct("PublicKey")
            .field("n", &self.n)
            .field("e", &self.e)
            .finish()
    }
}

/// RSA secret key `(n, d)` with its prebuilt [`SignCtx`].
#[derive(Clone)]
pub struct SecretKey {
    n: BigUint,
    d: BigUint,
    ctx: Arc<SignCtx>,
}

impl fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print the private exponent.
        write!(f, "SecretKey(n={} bits)", self.n.bits())
    }
}

/// A detached signature (big-endian bytes of `s = m^d mod n`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RawSignature(pub Vec<u8>);

impl PublicKey {
    /// Modulus size in bytes (`k` in PKCS#1 terms).
    pub fn modulus_len(&self) -> usize {
        self.n.bits().div_ceil(8)
    }

    /// Verifies `sig` over `message` (hashed internally with SHA-256).
    pub fn verify(&self, message: &[u8], sig: &RawSignature) -> bool {
        self.verify_digest(&sha256::digest(message), sig)
    }

    /// Verifies `sig` over `message` via plain `pow_mod` (see
    /// [`verify_digest_naive`]): the pre-Montgomery reference path used as
    /// the per-receiver cost baseline in benchmarks.
    ///
    /// [`verify_digest_naive`]: PublicKey::verify_digest_naive
    pub fn verify_naive(&self, message: &[u8], sig: &RawSignature) -> bool {
        self.verify_digest_naive(&sha256::digest(message), sig)
    }

    /// Verifies `sig` over a precomputed digest using the prebuilt
    /// Montgomery context (the fast path).
    pub fn verify_digest(&self, digest: &Digest, sig: &RawSignature) -> bool {
        let s = BigUint::from_bytes_be(&sig.0);
        if s >= self.n {
            return false;
        }
        let m = self.ctx.pow(&s);
        let expected = pad_digest(digest, self.modulus_len());
        m == BigUint::from_bytes_be(&expected)
    }

    /// Verifies `sig` via plain `pow_mod` — the pre-Montgomery reference
    /// path, kept public as the differential oracle and the benchmark
    /// baseline. Verdicts are bit-identical to [`verify_digest`]
    /// (deterministic hash-then-modexp over the same unique residues).
    ///
    /// [`verify_digest`]: PublicKey::verify_digest
    pub fn verify_digest_naive(&self, digest: &Digest, sig: &RawSignature) -> bool {
        let s = BigUint::from_bytes_be(&sig.0);
        if s >= self.n {
            return false;
        }
        let m = modmath::pow_mod(&s, &self.e, &self.n);
        let expected = pad_digest(digest, self.modulus_len());
        m == BigUint::from_bytes_be(&expected)
    }

    /// The prebuilt verification context.
    pub fn verify_ctx(&self) -> &Arc<VerifyCtx> {
        &self.ctx
    }
}

impl SecretKey {
    /// Signs `message` (hashed internally with SHA-256).
    pub fn sign(&self, message: &[u8]) -> RawSignature {
        self.sign_digest(&sha256::digest(message))
    }

    /// Signs a precomputed digest using the prebuilt Montgomery context
    /// (the fast path).
    pub fn sign_digest(&self, digest: &Digest) -> RawSignature {
        let k = self.n.bits().div_ceil(8);
        let m = BigUint::from_bytes_be(&pad_digest(digest, k));
        debug_assert!(m < self.n);
        let s = self.ctx.pow(&m);
        RawSignature(s.to_bytes_be())
    }

    /// Signs via plain `pow_mod` — the pre-Montgomery reference path, kept
    /// public as the differential oracle. Signature bytes are identical to
    /// [`sign_digest`]'s.
    ///
    /// [`sign_digest`]: SecretKey::sign_digest
    pub fn sign_digest_naive(&self, digest: &Digest) -> RawSignature {
        let k = self.n.bits().div_ceil(8);
        let m = BigUint::from_bytes_be(&pad_digest(digest, k));
        debug_assert!(m < self.n);
        let s = modmath::pow_mod(&m, &self.d, &self.n);
        RawSignature(s.to_bytes_be())
    }
}

/// Simplified EMSA-PKCS#1-v1.5: `0x00 0x01 FF…FF 0x00 || digest`,
/// `k` bytes total.
fn pad_digest(digest: &Digest, k: usize) -> Vec<u8> {
    assert!(k >= digest.len() + 11, "modulus too small for padding");
    let mut out = Vec::with_capacity(k);
    out.push(0x00);
    out.push(0x01);
    out.resize(k - digest.len() - 1, 0xff);
    out.push(0x00);
    out.extend_from_slice(digest);
    out
}

/// Generates an RSA key pair with an `bits`-bit modulus.
pub fn generate(bits: usize, rng: &mut impl Rng) -> Result<(PublicKey, SecretKey), RsaError> {
    if bits < MIN_MODULUS_BITS {
        return Err(RsaError::ModulusTooSmall { requested: bits });
    }
    let e = BigUint::from(PUBLIC_EXPONENT);
    loop {
        let p = crate::prime::gen_prime(bits / 2, rng);
        let q = crate::prime::gen_prime(bits - bits / 2, rng);
        if p == q {
            continue;
        }
        let n = &p * &q;
        let phi = &(&p - &BigUint::one()) * &(&q - &BigUint::one());
        if !gcd(&e, &phi).is_one() {
            continue;
        }
        let d = modmath::inv_mod(&e, &phi).expect("coprime by check above");
        // One Montgomery context per modulus, shared by both key halves;
        // each half precomputes its own exponent's window schedule.
        let mont = Arc::new(
            MontgomeryCtx::new(&n).expect("RSA modulus is an odd semiprime > 1"),
        );
        let verify_ctx = Arc::new(ExpCtx::new(Arc::clone(&mont), &e));
        let sign_ctx = Arc::new(ExpCtx::new(mont, &d));
        return Ok((
            PublicKey {
                n: n.clone(),
                e,
                ctx: verify_ctx,
            },
            SecretKey {
                n,
                d,
                ctx: sign_ctx,
            },
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair() -> (PublicKey, SecretKey) {
        let mut rng = StdRng::seed_from_u64(7);
        generate(MIN_MODULUS_BITS, &mut rng).unwrap()
    }

    #[test]
    fn sign_verify_roundtrip() {
        let (pk, sk) = keypair();
        let msg = b"bid: P3 offers w=2.25";
        let sig = sk.sign(msg);
        assert!(pk.verify(msg, &sig));
    }

    #[test]
    fn tampered_message_rejected() {
        let (pk, sk) = keypair();
        let sig = sk.sign(b"alpha = 0.25");
        assert!(!pk.verify(b"alpha = 0.26", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let (pk, sk) = keypair();
        let mut sig = sk.sign(b"payload");
        sig.0[0] ^= 0x40;
        assert!(!pk.verify(b"payload", &sig));
    }

    #[test]
    fn signature_from_wrong_key_rejected() {
        let (pk, _) = keypair();
        let mut rng = StdRng::seed_from_u64(99);
        let (_, other_sk) = generate(MIN_MODULUS_BITS, &mut rng).unwrap();
        let sig = other_sk.sign(b"payload");
        assert!(!pk.verify(b"payload", &sig));
    }

    #[test]
    fn oversized_signature_value_rejected() {
        let (pk, _) = keypair();
        // s >= n must be rejected without panicking.
        let huge = RawSignature(vec![0xff; pk.modulus_len() + 4]);
        assert!(!pk.verify(b"x", &huge));
    }

    #[test]
    fn too_small_modulus_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            generate(128, &mut rng),
            Err(RsaError::ModulusTooSmall { requested: 128 })
        ));
    }

    #[test]
    fn padding_shape() {
        let d = sha256::digest(b"abc");
        let padded = pad_digest(&d, 48);
        assert_eq!(padded.len(), 48);
        assert_eq!(&padded[..2], &[0x00, 0x01]);
        assert_eq!(padded[48 - 33], 0x00);
        assert_eq!(&padded[48 - 32..], &d);
        assert!(padded[2..48 - 33].iter().all(|&b| b == 0xff));
    }

    #[test]
    fn deterministic_signatures() {
        let (_, sk) = keypair();
        assert_eq!(sk.sign(b"same"), sk.sign(b"same"));
    }

    #[test]
    fn secret_key_debug_redacts() {
        let (_, sk) = keypair();
        let dbg = format!("{sk:?}");
        assert!(!dbg.contains(&sk.d.to_string()));
    }

    #[test]
    fn montgomery_and_naive_paths_are_byte_identical() {
        // Fixed-vector round trip: the Montgomery fast path must produce the
        // same signature bytes and the same verdicts as the pre-Montgomery
        // `pow_mod` path on identical inputs.
        let (pk, sk) = keypair();
        for msg in [
            &b"bid: P3 offers w=2.25"[..],
            b"",
            b"payment vector Q = (1/3, 1/3, 1/3)",
        ] {
            let digest = sha256::digest(msg);
            let fast = sk.sign_digest(&digest);
            let naive = sk.sign_digest_naive(&digest);
            assert_eq!(fast, naive, "signature bytes diverge on {msg:?}");
            assert!(pk.verify_digest(&digest, &fast));
            assert!(pk.verify_digest_naive(&digest, &fast));
            // A tampered signature is rejected identically by both paths.
            let mut bad = fast.clone();
            bad.0[0] ^= 0x01;
            assert_eq!(
                pk.verify_digest(&digest, &bad),
                pk.verify_digest_naive(&digest, &bad)
            );
            assert!(!pk.verify_digest(&digest, &bad));
        }
    }

    #[test]
    fn key_halves_share_one_montgomery_context() {
        let (pk, sk) = keypair();
        assert!(Arc::ptr_eq(
            pk.verify_ctx().montgomery(),
            sk.ctx.montgomery()
        ));
    }
}
