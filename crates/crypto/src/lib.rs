//! # `dls-crypto` — signature and PKI substrate
//!
//! The DLS-BL-NCP mechanism (Carroll & Grosu, IPPS 2006, §4) assumes:
//!
//! > *"the existence of a payment infrastructure and a public key
//! > infrastructure (PKI), to which the participants have access … Each
//! > participant has a public cryptographic key set. We do not dictate the
//! > specific cryptosystem, but it must minimally support digital
//! > signatures."*
//!
//! This crate supplies exactly that minimal contract, built from scratch on
//! the `dls-num` bignum substrate:
//!
//! * [`sha256`] — FIPS 180-4 SHA-256 (known-answer tested against the NIST
//!   vectors) used as the message digest.
//! * [`prime`] — Miller–Rabin primality testing and random prime generation.
//! * [`rsa`] — textbook RSA signatures over SHA-256 digests with a
//!   simplified EMSA-PKCS#1-v1.5 padding.
//! * [`canon`] — a deterministic binary encoding for any `serde::Serialize`
//!   type, so that signing a message is well-defined (`SIG_β(m)` in the
//!   paper's notation needs canonical bytes for `m`).
//! * [`pki`] — the registry mapping participant identities to public keys
//!   plus the [`pki::Signed`] envelope (`S_β(m) = (m, SIG_β(m))`).
//! * [`ctx`] — per-key Montgomery contexts (built once at key generation,
//!   reused for every modexp) and the per-session verification cache that
//!   amortizes envelope verification across receivers.
//!
//! ## Substitution note (see DESIGN.md)
//!
//! The paper does not dictate a cryptosystem. We use small-modulus RSA
//! (default 512-bit, configurable) because the mechanism only needs
//! *unforgeable within the simulation* signatures with publicly verifiable
//! evidence of equivocation. **This is simulation-grade, not production,
//! cryptography** — no constant-time guarantees, no modern padding, small
//! default keys chosen for test throughput.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canon;
pub mod ctx;
pub mod pki;
pub mod prime;
pub mod rsa;
pub mod sha256;

pub use ctx::{SignCtx, VerifyCache, VerifyCtx};
pub use pki::{KeyPair, Registry, Signed, SignatureError};
pub use sha256::Sha256;
