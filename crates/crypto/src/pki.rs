//! Public-key infrastructure and signed-message envelopes.
//!
//! Implements the paper's notation directly:
//!
//! * `SK_β` — the private key of participant β ([`KeyPair`]),
//! * `SIG_β(m)` — β's signature over canonical bytes of `m`,
//! * `S_β(m) = (m, SIG_β(m))` — the signed message ([`Signed`]),
//! * the PKI that registers public keys under participant identities
//!   ([`Registry`]).
//!
//! [`Signed`] envelopes are the *evidence objects* the referee consumes: two
//! verified envelopes from the same signer with the same context but
//! different bodies constitute proof of equivocation (used in the Bidding
//! phase of DLS-BL-NCP, §4).

use crate::canon;
use crate::ctx::{verdict_key, VerifyCache};
use crate::rsa::{self, PublicKey, RawSignature, SecretKey};
use rand::Rng;
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Errors from signing or verifying envelopes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SignatureError {
    /// The claimed signer has no key registered in the PKI.
    UnknownSigner(String),
    /// The signature does not verify under the signer's registered key.
    BadSignature {
        /// Claimed signer identity.
        signer: String,
    },
    /// The body could not be canonically encoded.
    Encoding(String),
}

impl fmt::Display for SignatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignatureError::UnknownSigner(who) => write!(f, "no key registered for {who:?}"),
            SignatureError::BadSignature { signer } => {
                write!(f, "signature verification failed for {signer:?}")
            }
            SignatureError::Encoding(e) => write!(f, "cannot encode body: {e}"),
        }
    }
}

impl std::error::Error for SignatureError {}

/// A participant's key pair plus its registered identity.
#[derive(Debug, Clone)]
pub struct KeyPair {
    identity: String,
    public: PublicKey,
    secret: SecretKey,
}

impl KeyPair {
    /// Generates a key pair for `identity` with the given modulus size.
    pub fn generate(
        identity: impl Into<String>,
        modulus_bits: usize,
        rng: &mut impl Rng,
    ) -> Result<Self, rsa::RsaError> {
        let (public, secret) = rsa::generate(modulus_bits, rng)?;
        Ok(KeyPair {
            identity: identity.into(),
            public,
            secret,
        })
    }

    /// The registered identity.
    pub fn identity(&self) -> &str {
        &self.identity
    }

    /// The public half.
    pub fn public(&self) -> &PublicKey {
        &self.public
    }

    /// Signs `body`, producing the `S_β(m)` envelope.
    pub fn sign<T: Serialize>(&self, body: T) -> Result<Signed<T>, SignatureError> {
        let bytes =
            canon::to_bytes(&body).map_err(|e| SignatureError::Encoding(e.to_string()))?;
        let signature = self.secret.sign(&bytes);
        Ok(Signed {
            body,
            signer: self.identity.clone(),
            signature,
        })
    }
}

/// A signed message `S_β(m) = (m, SIG_β(m))`.
///
/// The body is readable without verification (messages travel on an
/// untrusted channel and receivers *must* call [`Signed::verify`] before
/// acting — the protocol layer enforces this by only exposing verified
/// bodies).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signed<T> {
    body: T,
    signer: String,
    signature: RawSignature,
}

// Envelopes are themselves serializable so they can be nested inside other
// signed bodies (e.g. user-signed blocks inside an originator-signed grant).
impl<T: Serialize> Serialize for Signed<T> {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let mut s = serializer.serialize_struct("Signed", 3)?;
        s.serialize_field("body", &self.body)?;
        s.serialize_field("signer", &self.signer)?;
        s.serialize_field("signature", &self.signature.0)?;
        s.end()
    }
}

impl<T: Serialize> Signed<T> {
    /// The claimed signer identity (unverified).
    pub fn signer(&self) -> &str {
        &self.signer
    }

    /// The body **without verification** — only for diagnostics/evidence
    /// display; use [`Signed::verify`] before trusting contents.
    pub fn body_unverified(&self) -> &T {
        &self.body
    }

    /// The raw signature bytes.
    pub fn signature(&self) -> &RawSignature {
        &self.signature
    }

    /// Verifies against the registry and returns the body on success.
    pub fn verify<'a>(&'a self, registry: &Registry) -> Result<&'a T, SignatureError> {
        let key = registry
            .lookup(&self.signer)
            .ok_or_else(|| SignatureError::UnknownSigner(self.signer.clone()))?;
        let bytes =
            canon::to_bytes(&self.body).map_err(|e| SignatureError::Encoding(e.to_string()))?;
        if key.verify(&bytes, &self.signature) {
            Ok(&self.body)
        } else {
            Err(SignatureError::BadSignature {
                signer: self.signer.clone(),
            })
        }
    }

    /// Verifies against the registry, memoizing the verdict in `cache` so
    /// later receivers of byte-identical envelopes skip the modexp.
    ///
    /// Returns exactly what [`Signed::verify`] would: verification is
    /// deterministic (hash-then-modexp over fixed bytes under a fixed
    /// registry), so sharing the verdict across receivers preserves every
    /// accept/reject decision bit-for-bit.
    pub fn verify_cached<'a>(
        &'a self,
        registry: &Registry,
        cache: &VerifyCache,
    ) -> Result<&'a T, SignatureError> {
        let key = registry
            .lookup(&self.signer)
            .ok_or_else(|| SignatureError::UnknownSigner(self.signer.clone()))?;
        let bytes =
            canon::to_bytes(&self.body).map_err(|e| SignatureError::Encoding(e.to_string()))?;
        let vk = verdict_key(&self.signer, &bytes, &self.signature.0);
        let ok = match cache.get(&vk) {
            Some(verdict) => verdict,
            None => {
                let verdict = key.verify(&bytes, &self.signature);
                cache.insert(vk, verdict);
                verdict
            }
        };
        if ok {
            Ok(&self.body)
        } else {
            Err(SignatureError::BadSignature {
                signer: self.signer.clone(),
            })
        }
    }

    /// Verifies via the plain `pow_mod` reference path (no Montgomery
    /// context, no memoization): the honest per-receiver cost model used
    /// as the benchmark baseline. Verdicts are identical to
    /// [`Signed::verify`]'s — only the arithmetic route differs.
    pub fn verify_naive<'a>(&'a self, registry: &Registry) -> Result<&'a T, SignatureError> {
        let key = registry
            .lookup(&self.signer)
            .ok_or_else(|| SignatureError::UnknownSigner(self.signer.clone()))?;
        let bytes =
            canon::to_bytes(&self.body).map_err(|e| SignatureError::Encoding(e.to_string()))?;
        if key.verify_naive(&bytes, &self.signature) {
            Ok(&self.body)
        } else {
            Err(SignatureError::BadSignature {
                signer: self.signer.clone(),
            })
        }
    }

    /// Consumes the envelope, returning the verified body.
    pub fn into_verified(self, registry: &Registry) -> Result<T, SignatureError> {
        self.verify(registry)?;
        Ok(self.body)
    }

    /// Forges an envelope with an arbitrary signature — **test/attack
    /// harness only**, used by deviant-strategy simulations to prove that
    /// forged messages are rejected.
    pub fn forge(body: T, signer: impl Into<String>, signature: Vec<u8>) -> Self {
        Signed {
            body,
            signer: signer.into(),
            signature: RawSignature(signature),
        }
    }

    /// Maps the body while *preserving* the (now almost certainly invalid)
    /// signature. Models in-flight tampering for fault-injection tests.
    pub fn tamper<U>(self, f: impl FnOnce(T) -> U) -> Signed<U> {
        Signed {
            body: f(self.body),
            signer: self.signer,
            signature: self.signature,
        }
    }
}

/// The PKI: identity → public key. Cheap to clone (shared map) so every
/// processor thread can hold one.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    keys: Arc<BTreeMap<String, PublicKey>>,
}

impl Registry {
    /// Builds a registry from participants' key pairs.
    pub fn from_keypairs<'a>(pairs: impl IntoIterator<Item = &'a KeyPair>) -> Self {
        let keys = pairs
            .into_iter()
            .map(|kp| (kp.identity.clone(), kp.public.clone()))
            .collect();
        Registry {
            keys: Arc::new(keys),
        }
    }

    /// Looks up the public key registered for `identity`.
    pub fn lookup(&self, identity: &str) -> Option<&PublicKey> {
        self.keys.get(identity)
    }

    /// Number of registered identities.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` iff no identities are registered.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// Checks whether two envelopes constitute *evidence of equivocation*: both
/// verify under the same signer's registered key but have different bodies.
///
/// This is the predicate the referee applies during the Bidding phase: "If
/// `P_j` receives multiple authenticated messages from `P_i`, it signals the
/// referee providing the messages as evidence of cheating" (§4).
pub fn is_equivocation<T: Serialize + PartialEq>(
    a: &Signed<T>,
    b: &Signed<T>,
    registry: &Registry,
) -> bool {
    a.signer == b.signer
        && a.verify(registry).is_ok()
        && b.verify(registry).is_ok()
        && a.body != b.body
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsa::MIN_MODULUS_BITS;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use serde::Serialize;

    #[derive(Debug, Clone, PartialEq, Serialize)]
    struct Bid {
        processor: String,
        w: f64,
    }

    fn setup() -> (KeyPair, KeyPair, Registry) {
        let mut rng = StdRng::seed_from_u64(123);
        let kp1 = KeyPair::generate("P1", MIN_MODULUS_BITS, &mut rng).unwrap();
        let kp2 = KeyPair::generate("P2", MIN_MODULUS_BITS, &mut rng).unwrap();
        let reg = Registry::from_keypairs([&kp1, &kp2]);
        (kp1, kp2, reg)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let (kp1, _, reg) = setup();
        let signed = kp1
            .sign(Bid {
                processor: "P1".into(),
                w: 1.5,
            })
            .unwrap();
        let body = signed.verify(&reg).unwrap();
        assert_eq!(body.w, 1.5);
        assert_eq!(signed.signer(), "P1");
    }

    #[test]
    fn unknown_signer_rejected() {
        let (kp1, _, _) = setup();
        let reg = Registry::default();
        let signed = kp1
            .sign(Bid {
                processor: "P1".into(),
                w: 1.5,
            })
            .unwrap();
        assert!(matches!(
            signed.verify(&reg),
            Err(SignatureError::UnknownSigner(_))
        ));
    }

    #[test]
    fn cross_signer_forgery_rejected() {
        let (kp1, _, reg) = setup();
        // kp1 signs but claims to be P2.
        let mut signed = kp1
            .sign(Bid {
                processor: "P2".into(),
                w: 0.5,
            })
            .unwrap();
        signed.signer = "P2".into();
        assert!(matches!(
            signed.verify(&reg),
            Err(SignatureError::BadSignature { .. })
        ));
    }

    #[test]
    fn tampered_body_rejected() {
        let (kp1, _, reg) = setup();
        let signed = kp1
            .sign(Bid {
                processor: "P1".into(),
                w: 1.5,
            })
            .unwrap();
        let tampered = signed.tamper(|mut b| {
            b.w = 0.1;
            b
        });
        assert!(tampered.verify(&reg).is_err());
    }

    #[test]
    fn forged_signature_rejected() {
        let (_, _, reg) = setup();
        let forged = Signed::forge(
            Bid {
                processor: "P1".into(),
                w: 9.9,
            },
            "P1",
            vec![0xab; 48],
        );
        assert!(forged.verify(&reg).is_err());
    }

    #[test]
    fn equivocation_detected() {
        let (kp1, _, reg) = setup();
        let a = kp1
            .sign(Bid {
                processor: "P1".into(),
                w: 1.0,
            })
            .unwrap();
        let b = kp1
            .sign(Bid {
                processor: "P1".into(),
                w: 2.0,
            })
            .unwrap();
        assert!(is_equivocation(&a, &b, &reg));
        // Same body twice is NOT equivocation.
        assert!(!is_equivocation(&a, &a.clone(), &reg));
    }

    #[test]
    fn equivocation_requires_valid_signatures() {
        let (kp1, _, reg) = setup();
        let a = kp1
            .sign(Bid {
                processor: "P1".into(),
                w: 1.0,
            })
            .unwrap();
        let forged = Signed::forge(
            Bid {
                processor: "P1".into(),
                w: 2.0,
            },
            "P1",
            vec![0u8; 48],
        );
        // A forged second message must not frame P1 for equivocation
        // (Lemma 5.2: fines only for actual deviation).
        assert!(!is_equivocation(&a, &forged, &reg));
    }

    #[test]
    fn verify_cached_matches_verify_and_memoizes() {
        let (kp1, _, reg) = setup();
        let cache = VerifyCache::new();
        let good = kp1
            .sign(Bid {
                processor: "P1".into(),
                w: 1.5,
            })
            .unwrap();
        let forged = Signed::forge(
            Bid {
                processor: "P1".into(),
                w: 9.9,
            },
            "P1",
            vec![0xab; 48],
        );
        // First pass populates the cache; second pass must hit it and
        // return identical verdicts to the uncached path.
        for _ in 0..2 {
            assert_eq!(
                good.verify_cached(&reg, &cache).is_ok(),
                good.verify(&reg).is_ok()
            );
            assert_eq!(
                forged.verify_cached(&reg, &cache).err(),
                forged.verify(&reg).err()
            );
        }
        assert_eq!(cache.len(), 2, "one verdict per distinct envelope");
        // Unknown signers are rejected before touching the cache.
        let unknown = Signed::forge(
            Bid {
                processor: "P9".into(),
                w: 1.0,
            },
            "P9",
            vec![0u8; 48],
        );
        assert!(matches!(
            unknown.verify_cached(&reg, &cache),
            Err(SignatureError::UnknownSigner(_))
        ));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn registry_lookup() {
        let (kp1, kp2, reg) = setup();
        assert_eq!(reg.len(), 2);
        assert!(!reg.is_empty());
        assert_eq!(reg.lookup("P1"), Some(kp1.public()));
        assert_eq!(reg.lookup("P2"), Some(kp2.public()));
        assert_eq!(reg.lookup("P3"), None);
    }
}
