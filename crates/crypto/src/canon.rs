//! Canonical deterministic byte encoding for `serde::Serialize` values.
//!
//! Signing a message requires a well-defined byte string for it (`SIG_β(m)`
//! in the paper's notation). This module provides a compact, self-describing
//! tag-length-value encoding with the properties the signature layer needs:
//!
//! * **Deterministic** — equal values always encode to equal bytes.
//! * **Injective over a fixed schema** — every field is framed by a type tag
//!   and (where variable-sized) a length, so distinct values of the same type
//!   cannot collide.
//!
//! Only serialization is implemented; the protocol exchanges typed values
//! in-process and uses the encoding solely as the signature pre-image.
//!
//! Maps with non-deterministic iteration order (e.g. `HashMap`) are rejected
//! at runtime — use `BTreeMap` in signed bodies.

use serde::ser::{self, Serialize};
use std::fmt;

/// Errors produced while canonically encoding a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CanonError {
    /// A type unsupported in canonical form (currently only `HashMap`-style
    /// maps, which have no deterministic order).
    Unsupported(&'static str),
    /// Custom error surfaced by a `Serialize` impl.
    Custom(String),
}

impl fmt::Display for CanonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CanonError::Unsupported(what) => write!(f, "cannot canonically encode {what}"),
            CanonError::Custom(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CanonError {}

impl ser::Error for CanonError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        CanonError::Custom(msg.to_string())
    }
}

/// Encodes `value` to canonical bytes.
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, CanonError> {
    let mut ser = CanonSerializer { out: Vec::new() };
    value.serialize(&mut ser)?;
    Ok(ser.out)
}

// Type tags. Every emitted value starts with one, which is what makes the
// encoding unambiguous.
mod tag {
    pub(super) const BOOL: u8 = 0x01;
    pub(super) const INT: u8 = 0x02; // i64, 8 bytes BE
    pub(super) const UINT: u8 = 0x03; // u64, 8 bytes BE
    pub(super) const U128: u8 = 0x04; // 16 bytes BE
    pub(super) const I128: u8 = 0x05;
    pub(super) const F64: u8 = 0x06; // IEEE-754 bits, BE
    pub(super) const BYTES: u8 = 0x07; // u64 length + raw
    pub(super) const STR: u8 = 0x08; // u64 length + UTF-8
    pub(super) const CHAR: u8 = 0x09;
    pub(super) const NONE: u8 = 0x0a;
    pub(super) const SOME: u8 = 0x0b;
    pub(super) const UNIT: u8 = 0x0c;
    pub(super) const SEQ: u8 = 0x0d; // u64 count, then elements
    pub(super) const TUPLE: u8 = 0x0e;
    pub(super) const STRUCT: u8 = 0x0f;
    pub(super) const VARIANT: u8 = 0x10; // u32 index, name, then payload
    pub(super) const END: u8 = 0x11; // terminates unknown-length sequences
}

struct CanonSerializer {
    out: Vec<u8>,
}

impl CanonSerializer {
    fn put_tag(&mut self, t: u8) {
        self.out.push(t);
    }

    fn put_u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_be_bytes());
    }

    fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.out.extend_from_slice(s.as_bytes());
    }
}

macro_rules! ser_int {
    ($meth:ident, $ty:ty) => {
        fn $meth(self, v: $ty) -> Result<(), CanonError> {
            self.put_tag(tag::INT);
            self.put_u64((v as i64) as u64);
            Ok(())
        }
    };
}

macro_rules! ser_uint {
    ($meth:ident, $ty:ty) => {
        fn $meth(self, v: $ty) -> Result<(), CanonError> {
            self.put_tag(tag::UINT);
            self.put_u64(v as u64);
            Ok(())
        }
    };
}

impl ser::Serializer for &mut CanonSerializer {
    type Ok = ();
    type Error = CanonError;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fn serialize_bool(self, v: bool) -> Result<(), CanonError> {
        self.put_tag(tag::BOOL);
        self.out.push(v as u8);
        Ok(())
    }

    ser_int!(serialize_i8, i8);
    ser_int!(serialize_i16, i16);
    ser_int!(serialize_i32, i32);
    ser_int!(serialize_i64, i64);
    ser_uint!(serialize_u8, u8);
    ser_uint!(serialize_u16, u16);
    ser_uint!(serialize_u32, u32);
    ser_uint!(serialize_u64, u64);

    fn serialize_i128(self, v: i128) -> Result<(), CanonError> {
        self.put_tag(tag::I128);
        self.out.extend_from_slice(&v.to_be_bytes());
        Ok(())
    }

    fn serialize_u128(self, v: u128) -> Result<(), CanonError> {
        self.put_tag(tag::U128);
        self.out.extend_from_slice(&v.to_be_bytes());
        Ok(())
    }

    // The serializer must cover the full serde data model, floats
    // included — message bodies carry f64 bids and meters. The float path
    // only canonicalizes the bit pattern (NaN payload, -0.0); it never
    // does arithmetic, so the exact-payment guarantee is untouched.
    // dls-lint: allow(no-float-in-exact) -- serde surface: widen f32 to the canonical f64 wire form
    fn serialize_f32(self, v: f32) -> Result<(), CanonError> {
        // dls-lint: allow(no-float-in-exact) -- bit-level widening, no arithmetic
        self.serialize_f64(v as f64)
    }

    // dls-lint: allow(no-float-in-exact) -- serde surface: floats are serialized by bit pattern only
    fn serialize_f64(self, v: f64) -> Result<(), CanonError> {
        self.put_tag(tag::F64);
        // Canonicalize the NaN payload and -0.0 so equal numbers sign equal.
        let v = if v.is_nan() {
            // dls-lint: allow(no-float-in-exact) -- canonical NaN bit pattern
            f64::NAN
            // dls-lint: allow(no-float-in-exact) -- -0.0 folds to +0.0 for signing
        } else if v == 0.0 {
            // dls-lint: allow(no-float-in-exact) -- canonical zero bit pattern
            0.0
        } else {
            v
        };
        self.out.extend_from_slice(&v.to_bits().to_be_bytes());
        Ok(())
    }

    fn serialize_char(self, v: char) -> Result<(), CanonError> {
        self.put_tag(tag::CHAR);
        self.put_u64(v as u64);
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), CanonError> {
        self.put_tag(tag::STR);
        self.put_str(v);
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<(), CanonError> {
        self.put_tag(tag::BYTES);
        self.put_u64(v.len() as u64);
        self.out.extend_from_slice(v);
        Ok(())
    }

    fn serialize_none(self) -> Result<(), CanonError> {
        self.put_tag(tag::NONE);
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), CanonError> {
        self.put_tag(tag::SOME);
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<(), CanonError> {
        self.put_tag(tag::UNIT);
        Ok(())
    }

    fn serialize_unit_struct(self, name: &'static str) -> Result<(), CanonError> {
        self.put_tag(tag::STRUCT);
        self.put_str(name);
        self.put_tag(tag::UNIT);
        Ok(())
    }

    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<(), CanonError> {
        self.put_tag(tag::VARIANT);
        self.put_str(name);
        self.put_u64(variant_index as u64);
        self.put_str(variant);
        self.put_tag(tag::UNIT);
        Ok(())
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<(), CanonError> {
        self.put_tag(tag::STRUCT);
        self.put_str(name);
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), CanonError> {
        self.put_tag(tag::VARIANT);
        self.put_str(name);
        self.put_u64(variant_index as u64);
        self.put_str(variant);
        value.serialize(self)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<Self, CanonError> {
        self.put_tag(tag::SEQ);
        match len {
            Some(n) => self.put_u64(n as u64),
            // Unknown length: encode u64::MAX marker and rely on END.
            None => self.put_u64(u64::MAX),
        }
        Ok(self)
    }

    fn serialize_tuple(self, len: usize) -> Result<Self, CanonError> {
        self.put_tag(tag::TUPLE);
        self.put_u64(len as u64);
        Ok(self)
    }

    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self, CanonError> {
        self.put_tag(tag::STRUCT);
        self.put_str(name);
        self.put_tag(tag::TUPLE);
        self.put_u64(len as u64);
        Ok(self)
    }

    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self, CanonError> {
        self.put_tag(tag::VARIANT);
        self.put_str(name);
        self.put_u64(variant_index as u64);
        self.put_str(variant);
        self.put_tag(tag::TUPLE);
        self.put_u64(len as u64);
        Ok(self)
    }

    fn serialize_map(self, _len: Option<usize>) -> Result<Self, CanonError> {
        // BTreeMap would be fine, but serde gives us no way to distinguish
        // ordered from unordered maps here; signed bodies must avoid maps
        // entirely (use sorted Vec<(K, V)> instead).
        Err(CanonError::Unsupported(
            "maps (iteration order is not canonical; use sorted Vec<(K,V)>)",
        ))
    }

    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self, CanonError> {
        self.put_tag(tag::STRUCT);
        self.put_str(name);
        self.put_u64(len as u64);
        Ok(self)
    }

    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self, CanonError> {
        self.put_tag(tag::VARIANT);
        self.put_str(name);
        self.put_u64(variant_index as u64);
        self.put_str(variant);
        self.put_u64(len as u64);
        Ok(self)
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

impl ser::SerializeSeq for &mut CanonSerializer {
    type Ok = ();
    type Error = CanonError;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CanonError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), CanonError> {
        self.put_tag(tag::END);
        Ok(())
    }
}

impl ser::SerializeTuple for &mut CanonSerializer {
    type Ok = ();
    type Error = CanonError;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CanonError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), CanonError> {
        Ok(())
    }
}

impl ser::SerializeTupleStruct for &mut CanonSerializer {
    type Ok = ();
    type Error = CanonError;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CanonError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), CanonError> {
        Ok(())
    }
}

impl ser::SerializeTupleVariant for &mut CanonSerializer {
    type Ok = ();
    type Error = CanonError;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CanonError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), CanonError> {
        Ok(())
    }
}

impl ser::SerializeMap for &mut CanonSerializer {
    type Ok = ();
    type Error = CanonError;

    fn serialize_key<T: Serialize + ?Sized>(&mut self, _key: &T) -> Result<(), CanonError> {
        Err(CanonError::Unsupported("maps"))
    }

    fn serialize_value<T: Serialize + ?Sized>(&mut self, _value: &T) -> Result<(), CanonError> {
        Err(CanonError::Unsupported("maps"))
    }

    fn end(self) -> Result<(), CanonError> {
        Err(CanonError::Unsupported("maps"))
    }
}

impl ser::SerializeStruct for &mut CanonSerializer {
    type Ok = ();
    type Error = CanonError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), CanonError> {
        self.put_str(key);
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), CanonError> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for &mut CanonSerializer {
    type Ok = ();
    type Error = CanonError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), CanonError> {
        self.put_str(key);
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), CanonError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;

    #[derive(Serialize)]
    struct Bid {
        processor: String,
        value: f64,
        round: u32,
    }

    #[derive(Serialize)]
    enum Msg {
        Hello,
        Bid { value: f64 },
        Pair(u32, u32),
    }

    #[test]
    fn deterministic() {
        let b = Bid {
            processor: "P1".into(),
            value: 2.5,
            round: 7,
        };
        assert_eq!(to_bytes(&b).unwrap(), to_bytes(&b).unwrap());
    }

    #[test]
    fn field_values_do_not_collide() {
        // ("ab", "c") must differ from ("a", "bc") — length framing.
        #[derive(Serialize)]
        struct Two(String, String);
        let a = to_bytes(&Two("ab".into(), "c".into())).unwrap();
        let b = to_bytes(&Two("a".into(), "bc".into())).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn distinct_values_distinct_bytes() {
        let x = Bid {
            processor: "P1".into(),
            value: 2.5,
            round: 7,
        };
        let y = Bid {
            processor: "P1".into(),
            value: 2.5000001,
            round: 7,
        };
        assert_ne!(to_bytes(&x).unwrap(), to_bytes(&y).unwrap());
    }

    #[test]
    fn enum_variants_distinct() {
        assert_ne!(
            to_bytes(&Msg::Hello).unwrap(),
            to_bytes(&Msg::Bid { value: 0.0 }).unwrap()
        );
        assert_ne!(
            to_bytes(&Msg::Pair(1, 2)).unwrap(),
            to_bytes(&Msg::Pair(2, 1)).unwrap()
        );
    }

    #[test]
    fn options_and_seqs() {
        assert_ne!(
            to_bytes(&Option::<u32>::None).unwrap(),
            to_bytes(&Some(0u32)).unwrap()
        );
        assert_ne!(
            to_bytes(&vec![1u32, 2]).unwrap(),
            to_bytes(&vec![1u32, 2, 0]).unwrap()
        );
        assert_eq!(
            to_bytes(&vec![1u32, 2]).unwrap(),
            to_bytes(&[1u32, 2][..]).unwrap()
        );
    }

    #[test]
    fn negative_zero_canonicalized() {
        assert_eq!(to_bytes(&0.0f64).unwrap(), to_bytes(&(-0.0f64)).unwrap());
    }

    #[test]
    fn maps_rejected() {
        let m: std::collections::HashMap<String, u32> =
            [("a".to_string(), 1u32)].into_iter().collect();
        assert!(matches!(
            to_bytes(&m),
            Err(CanonError::Unsupported(_))
        ));
    }

    #[test]
    fn nested_struct_roundtrip_determinism() {
        #[derive(Serialize)]
        struct Outer {
            inner: Vec<Bid>,
            tag: Option<String>,
        }
        let o = Outer {
            inner: vec![
                Bid {
                    processor: "P1".into(),
                    value: 1.0,
                    round: 0,
                },
                Bid {
                    processor: "P2".into(),
                    value: 2.0,
                    round: 1,
                },
            ],
            tag: Some("x".into()),
        };
        assert_eq!(to_bytes(&o).unwrap(), to_bytes(&o).unwrap());
    }
}
