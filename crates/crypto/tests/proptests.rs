//! Property tests for the crypto substrate.
//!
//! Key generation is expensive, so a handful of cached key pairs are shared
//! across cases and the per-case iteration count is reduced.
//!
//! **Fidelity note:** in this offline workspace these properties run
//! against the vendored proptest stand-in (`vendor/proptest`): a
//! deterministic per-test seed, a fixed case count, no shrinking, and no
//! run-to-run variation. A green run is a frozen regression sweep (256
//! cases by default), not real fuzzing — re-run the suite against
//! upstream proptest whenever registry access is available (see
//! `vendor/README.md`).

use dls_crypto::canon;
use dls_crypto::pki::{is_equivocation, KeyPair, Registry};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::sync::OnceLock;

#[derive(Debug, Clone, PartialEq, Serialize)]
struct Payload {
    id: String,
    bid: f64,
    round: u32,
    flags: Vec<bool>,
}

fn fixtures() -> &'static (KeyPair, KeyPair, Registry) {
    static CELL: OnceLock<(KeyPair, KeyPair, Registry)> = OnceLock::new();
    CELL.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(2024);
        let a = KeyPair::generate("A", 384, &mut rng).unwrap();
        let b = KeyPair::generate("B", 384, &mut rng).unwrap();
        let reg = Registry::from_keypairs([&a, &b]);
        (a, b, reg)
    })
}

fn arb_payload() -> impl Strategy<Value = Payload> {
    (
        "[a-z]{0,12}",
        prop::num::f64::NORMAL | prop::num::f64::ZERO,
        any::<u32>(),
        prop::collection::vec(any::<bool>(), 0..8),
    )
        .prop_map(|(id, bid, round, flags)| Payload {
            id,
            bid,
            round,
            flags,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn any_payload_roundtrips(p in arb_payload()) {
        let (a, _, reg) = fixtures();
        let signed = a.sign(p.clone()).unwrap();
        prop_assert_eq!(signed.verify(reg).unwrap(), &p);
    }

    #[test]
    fn wrong_signer_always_rejected(p in arb_payload()) {
        let (a, _, reg) = fixtures();
        let signed = a.sign(p).unwrap();
        // Claiming B's identity with A's signature must fail.
        let relabeled = dls_crypto::Signed::forge(
            signed.body_unverified().clone(),
            "B",
            signed.signature().0.clone(),
        );
        prop_assert!(relabeled.verify(reg).is_err());
    }

    #[test]
    fn tampering_any_field_detected(p in arb_payload(), delta in 1u32..1000) {
        let (a, _, reg) = fixtures();
        let signed = a.sign(p).unwrap();
        let tampered = signed.tamper(|mut b| { b.round = b.round.wrapping_add(delta); b });
        prop_assert!(tampered.verify(reg).is_err());
    }

    #[test]
    fn equivocation_iff_bodies_differ(p in arb_payload(), q in arb_payload()) {
        let (a, _, reg) = fixtures();
        let s1 = a.sign(p.clone()).unwrap();
        let s2 = a.sign(q.clone()).unwrap();
        prop_assert_eq!(is_equivocation(&s1, &s2, reg), p != q);
    }

    #[test]
    fn canon_deterministic(p in arb_payload()) {
        prop_assert_eq!(canon::to_bytes(&p).unwrap(), canon::to_bytes(&p).unwrap());
    }

    #[test]
    fn canon_injective_on_samples(p in arb_payload(), q in arb_payload()) {
        let bp = canon::to_bytes(&p).unwrap();
        let bq = canon::to_bytes(&q).unwrap();
        if p != q {
            prop_assert_ne!(bp, bq);
        } else {
            prop_assert_eq!(bp, bq);
        }
    }
}
