//! Property tests: the discrete-event simulator agrees with the closed-form
//! finishing-time equations on random schedules, and structural invariants
//! hold on every trace.
//!
//! **Fidelity note:** in this offline workspace these properties run
//! against the vendored proptest stand-in (`vendor/proptest`): a
//! deterministic per-test seed, a fixed case count, no shrinking, and no
//! run-to-run variation. A green run is a frozen regression sweep (256
//! cases by default), not real fuzzing — re-run the suite against
//! upstream proptest whenever registry access is available (see
//! `vendor/README.md`).

use dls_dlt::{finish_times, optimal, BusParams, SystemModel, ALL_MODELS};
use dls_netsim::{simulate, SessionSpec};
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = BusParams> {
    (
        0.0f64..3.0,
        prop::collection::vec(0.2f64..8.0, 1..10),
    )
        .prop_map(|(z, w)| BusParams::new(z, w).unwrap())
}

fn arb_model() -> impl Strategy<Value = SystemModel> {
    prop::sample::select(ALL_MODELS.to_vec())
}

proptest! {
    #[test]
    fn simulator_equals_closed_form_at_optimum(model in arb_model(), p in arb_params()) {
        let alloc = optimal::fractions(model, &p);
        let tl = simulate(&SessionSpec::new(model, p.clone(), alloc.clone()));
        let closed = finish_times(model, &p, &alloc);
        for (s, c) in tl.finish_times().iter().zip(&closed) {
            prop_assert!((s - c).abs() < 1e-9 * (1.0 + c.abs()), "{} vs {}", s, c);
        }
    }

    #[test]
    fn simulator_equals_closed_form_on_random_allocations(
        model in arb_model(), p in arb_params(),
        raw in prop::collection::vec(0.01f64..1.0, 10)
    ) {
        let m = p.m();
        let total: f64 = raw[..m].iter().sum();
        let alloc: Vec<f64> = raw[..m].iter().map(|x| x / total).collect();
        let tl = simulate(&SessionSpec::new(model, p.clone(), alloc.clone()));
        let closed = finish_times(model, &p, &alloc);
        for (s, c) in tl.finish_times().iter().zip(&closed) {
            prop_assert!((s - c).abs() < 1e-9 * (1.0 + c.abs()), "{} vs {}", s, c);
        }
    }

    #[test]
    fn one_port_holds_on_every_trace(model in arb_model(), p in arb_params(),
                                     raw in prop::collection::vec(0.0f64..1.0, 10)) {
        let m = p.m();
        let total: f64 = raw[..m].iter().sum::<f64>().max(1e-9);
        let alloc: Vec<f64> = raw[..m].iter().map(|x| x / total).collect();
        let tl = simulate(&SessionSpec::new(model, p, alloc));
        prop_assert!(tl.bus_is_one_port());
    }

    #[test]
    fn compute_never_precedes_data(model in arb_model(), p in arb_params()) {
        let alloc = optimal::fractions(model, &p);
        let tl = simulate(&SessionSpec::new(model, p, alloc));
        for proc_ in &tl.procs {
            if let (Some(r), Some(c)) = (proc_.recv, proc_.compute) {
                prop_assert!(c.start >= r.end - 1e-12);
            }
        }
    }

    #[test]
    fn makespan_is_max_finish(model in arb_model(), p in arb_params()) {
        let alloc = optimal::fractions(model, &p);
        let tl = simulate(&SessionSpec::new(model, p, alloc));
        let max_finish = tl.finish_times().into_iter().fold(0.0f64, f64::max);
        prop_assert!((tl.makespan - max_finish).abs() < 1e-12);
    }

    // ---------------- Linear-chain executor ----------------

    #[test]
    fn chain_simulator_matches_closed_form(
        w in prop::collection::vec(0.2f64..8.0, 1..9),
        zs in prop::collection::vec(0.0f64..2.0, 8),
        raw in prop::collection::vec(0.05f64..1.0, 9),
    ) {
        let links = zs[..w.len() - 1].to_vec();
        let p = dls_dlt::linear::LinearParams::new(links, w).unwrap();
        let m = p.m();
        let total: f64 = raw[..m].iter().sum();
        let alloc: Vec<f64> = raw[..m].iter().map(|x| x / total).collect();
        let tl = dls_netsim::linear::simulate_chain(&p, &alloc);
        let closed = dls_dlt::linear::finish_times(&p, &alloc);
        for (s, c) in tl.finish_times().iter().zip(&closed) {
            prop_assert!((s - c).abs() < 1e-9 * (1.0 + c.abs()), "{} vs {}", s, c);
        }
    }

    // ---------------- Multi-installment executor ----------------

    #[test]
    fn multiround_monotone_and_bounded(
        w in prop::collection::vec(0.5f64..6.0, 2..8),
        z in 0.01f64..2.0,
        rounds in 2usize..12,
    ) {
        let p = BusParams::new(z, w).unwrap();
        let t1 = dls_netsim::multiround::simulate_multiround(&p, 1).unwrap().makespan;
        let tr = dls_netsim::multiround::simulate_multiround(&p, rounds).unwrap().makespan;
        prop_assert!(tr <= t1 + 1e-12, "R={} worse: {} > {}", rounds, tr, t1);
        // Pipelining cannot beat the pure computation lower bound:
        // total work / aggregate speed.
        let agg: f64 = p.w().iter().map(|x| 1.0 / x).sum();
        prop_assert!(tr >= 1.0 / agg - 1e-9);
    }

    #[test]
    fn bus_carries_everything_except_originator(model in arb_model(), p in arb_params()) {
        let alloc = optimal::fractions(model, &p);
        let m = p.m();
        let z = p.z();
        let tl = simulate(&SessionSpec::new(model, p, alloc.clone()));
        let sent: f64 = tl.bus.iter().map(|(_, s)| s.duration()).sum();
        let expected: f64 = (0..m)
            .filter(|&i| model.originator(m) != Some(i))
            .map(|i| alloc[i] * z)
            .sum();
        prop_assert!((sent - expected).abs() < 1e-9);
    }
}
