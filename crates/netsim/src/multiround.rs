//! Multi-installment (multi-round) scheduling baseline — the comparison
//! point cited by the paper as \[20\] (Yang, van der Raadt & Casanova,
//! *Multiround algorithms for scheduling divisible loads*).
//!
//! Single-round bus scheduling leaves late processors idle while early
//! transfers complete. Splitting the load into `R` installments pipelines
//! communication behind computation: every processor starts after only
//! `1/R`-th of its data has arrived. This module implements the uniform
//! multi-installment heuristic (each round distributes `1/R` of the load
//! with the single-round optimal fractions) and measures the makespan on
//! the one-port bus — the experiment behind E12.

use crate::session::Segment;
use dls_dlt::{optimal, BusParams, SystemModel};
use std::fmt;

/// Invalid multi-round request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultiroundError {
    /// `rounds == 0` — no installments means no schedule to execute.
    ZeroRounds,
    /// A fault names a processor outside `0..m`.
    UnknownProcessor {
        /// The offending index.
        processor: usize,
        /// Number of processors on the bus.
        m: usize,
    },
    /// Every processor departed before round `round`; the remaining load
    /// has no one left to run on.
    AllDeparted {
        /// First round with an empty participant set (0-based).
        round: usize,
    },
}

impl fmt::Display for MultiroundError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MultiroundError::ZeroRounds => write!(f, "at least one round is required"),
            MultiroundError::UnknownProcessor { processor, m } => {
                write!(f, "fault names processor {processor}, but the bus has m = {m}")
            }
            MultiroundError::AllDeparted { round } => {
                write!(f, "all processors departed before round {round}")
            }
        }
    }
}

impl std::error::Error for MultiroundError {}

/// A liveness fault for the multi-round executor: `processor` departs at
/// the start of round `round` (0-based) and takes no further
/// installments. Mirrors the session runtime's crash/omission defaults
/// (`dls-protocol`'s `FaultPlan`), projected onto the installment
/// schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundFault {
    /// Departing processor (0-based).
    pub processor: usize,
    /// First round it misses (0-based); a value `>= rounds` never fires.
    pub round: usize,
}

/// Result of a multi-round execution.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiroundResult {
    /// Number of installments used.
    pub rounds: usize,
    /// Total execution time.
    pub makespan: f64,
    /// Per-processor compute segments, one per round while the processor
    /// participates, in time order.
    pub compute: Vec<Vec<Segment>>,
    /// Bus segments `(recipient, round, segment)`.
    pub bus: Vec<(usize, usize, Segment)>,
    /// Participant set of each round, ascending. Without faults every
    /// round records the full roster; a round after a departure records
    /// the reduced survivor set it actually re-solved over.
    pub participants: Vec<Vec<usize>>,
}

impl MultiroundResult {
    /// Fraction of the makespan the bus spent transmitting.
    pub fn bus_utilization(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self.bus.iter().map(|(_, _, s)| s.duration()).sum();
        busy / self.makespan
    }
}

/// Executes `rounds` uniform installments of the CP-model schedule on a
/// one-port bus and returns the realized timing.
///
/// Round `r`'s transfers start as soon as the bus is free (the bus never
/// waits for computation); each processor executes its installments in
/// arrival order.
///
/// # Errors
/// Returns [`MultiroundError::ZeroRounds`] if `rounds == 0` (previously a
/// panic; zero installments is a caller input error, not an invariant
/// breach, so it is reported as a typed error).
pub fn simulate_multiround(
    params: &BusParams,
    rounds: usize,
) -> Result<MultiroundResult, MultiroundError> {
    simulate_multiround_faulty(params, rounds, &[])
}

/// [`simulate_multiround`] with per-round liveness faults. A departed
/// processor takes no further installments; each subsequent round's `1/R`
/// of the load is re-split with the single-round optimal fractions over
/// the **survivor** sub-bus, and the round's reduced participant set is
/// recorded in [`MultiroundResult::participants`]. With `faults` empty
/// the result is bit-identical to the fault-free executor.
///
/// # Errors
/// [`MultiroundError::ZeroRounds`] if `rounds == 0`;
/// [`MultiroundError::UnknownProcessor`] if a fault names a processor
/// outside the bus; [`MultiroundError::AllDeparted`] if some round is
/// left with no participants.
pub fn simulate_multiround_faulty(
    params: &BusParams,
    rounds: usize,
    faults: &[RoundFault],
) -> Result<MultiroundResult, MultiroundError> {
    if rounds == 0 {
        return Err(MultiroundError::ZeroRounds);
    }
    let m = params.m();
    let z = params.z();
    let w = params.w();
    for f in faults {
        if f.processor >= m {
            return Err(MultiroundError::UnknownProcessor {
                processor: f.processor,
                m,
            });
        }
    }

    let mut bus_free = 0.0;
    let mut proc_free = vec![0.0; m];
    let mut compute: Vec<Vec<Segment>> = vec![Vec::with_capacity(rounds); m];
    let mut bus = Vec::with_capacity(rounds * m);
    let mut participants: Vec<Vec<usize>> = Vec::with_capacity(rounds);
    // Survivor fractions, re-solved only when the participant set shrinks.
    let mut cached: Option<(Vec<usize>, Vec<f64>)> = None;

    for r in 0..rounds {
        let alive: Vec<usize> = (0..m)
            .filter(|&i| !faults.iter().any(|f| f.processor == i && f.round <= r))
            .collect();
        if alive.is_empty() {
            return Err(MultiroundError::AllDeparted { round: r });
        }
        let stale = cached.as_ref().map_or(true, |(set, _)| *set != alive);
        if stale {
            let sub_w: Vec<f64> = alive.iter().map(|&i| w[i]).collect();
            let sub = BusParams::new(z, sub_w)
                .map_err(|_| MultiroundError::AllDeparted { round: r })?;
            let alpha = optimal::fractions(SystemModel::Cp, &sub);
            cached = Some((alive.clone(), alpha));
        }
        let alpha = cached.as_ref().map_or(&[] as &[f64], |(_, a)| a.as_slice());
        for (pos, &i) in alive.iter().enumerate() {
            let chunk = alpha.get(pos).copied().unwrap_or(0.0) / rounds as f64;
            if chunk <= 0.0 {
                continue;
            }
            // One-port transfer.
            let t_start = bus_free;
            let t_end = t_start + chunk * z;
            bus.push((i, r, Segment { start: t_start, end: t_end }));
            bus_free = t_end;
            // Compute after arrival, after the previous installment.
            let c_start = t_end.max(proc_free[i]);
            let c_end = c_start + chunk * w[i];
            compute[i].push(Segment { start: c_start, end: c_end });
            proc_free[i] = c_end;
        }
        participants.push(alive);
    }

    let makespan = proc_free.iter().cloned().fold(0.0f64, f64::max);
    Ok(MultiroundResult {
        rounds,
        makespan,
        compute,
        bus,
        participants,
    })
}

/// Convenience: single-round CP makespan from the same executor (equals the
/// closed-form optimum; asserted by tests).
pub fn single_round_makespan(params: &BusParams) -> f64 {
    simulate_multiround(params, 1)
        .expect("rounds = 1 is always valid")
        .makespan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> BusParams {
        BusParams::new(0.3, vec![1.0, 1.5, 2.0, 2.5, 3.0]).unwrap()
    }

    #[test]
    fn single_round_matches_closed_form() {
        let p = params();
        let got = single_round_makespan(&p);
        let want = optimal::optimal_makespan(SystemModel::Cp, &p);
        assert!((got - want).abs() < 1e-12, "{got} vs {want}");
    }

    #[test]
    fn more_rounds_never_hurt_without_overheads() {
        // With zero per-round overhead, pipelining is monotone beneficial.
        let p = params();
        let mut last = f64::INFINITY;
        for r in 1..=8 {
            let t = simulate_multiround(&p, r).unwrap().makespan;
            assert!(t <= last + 1e-12, "round {r}: {t} > {last}");
            last = t;
        }
    }

    #[test]
    fn multiround_beats_single_round_strictly() {
        let p = params();
        let t1 = simulate_multiround(&p, 1).unwrap().makespan;
        let t4 = simulate_multiround(&p, 4).unwrap().makespan;
        assert!(t4 < t1, "pipelining should strictly help: {t4} vs {t1}");
    }

    #[test]
    fn one_port_respected() {
        let res = simulate_multiround(&params(), 3).unwrap();
        for k in 1..res.bus.len() {
            assert!(res.bus[k].2.start >= res.bus[k - 1].2.end - 1e-15);
        }
    }

    #[test]
    fn installments_execute_in_order_per_processor() {
        let res = simulate_multiround(&params(), 4).unwrap();
        for segs in &res.compute {
            assert_eq!(segs.len(), 4);
            for k in 1..segs.len() {
                assert!(segs[k].start >= segs[k - 1].end - 1e-15);
            }
        }
    }

    #[test]
    fn bus_utilization_bounded() {
        let res = simulate_multiround(&params(), 2).unwrap();
        let u = res.bus_utilization();
        assert!(u > 0.0 && u <= 1.0, "{u}");
    }

    #[test]
    fn zero_rounds_is_a_typed_error() {
        assert_eq!(
            simulate_multiround(&params(), 0),
            Err(MultiroundError::ZeroRounds)
        );
        assert_eq!(
            MultiroundError::ZeroRounds.to_string(),
            "at least one round is required"
        );
    }

    #[test]
    fn faultless_run_records_full_roster_each_round() {
        let res = simulate_multiround(&params(), 3).unwrap();
        assert_eq!(res.participants.len(), 3);
        for round in &res.participants {
            assert_eq!(round, &vec![0, 1, 2, 3, 4]);
        }
        // The wrapper is literally the faulty executor with no faults.
        let faulty = simulate_multiround_faulty(&params(), 3, &[]).unwrap();
        assert_eq!(res, faulty);
    }

    #[test]
    fn departed_processor_takes_no_further_installments() {
        let p = params();
        let fault = RoundFault {
            processor: 2,
            round: 2,
        };
        let res = simulate_multiround_faulty(&p, 4, &[fault]).unwrap();
        assert_eq!(res.compute[2].len(), 2, "two rounds before departure");
        for (k, round) in res.participants.iter().enumerate() {
            if k < 2 {
                assert_eq!(round, &vec![0, 1, 2, 3, 4], "round {k}");
            } else {
                assert_eq!(round, &vec![0, 1, 3, 4], "round {k}");
            }
        }
        assert!(res
            .bus
            .iter()
            .all(|&(i, r, _)| i != 2 || r < 2), "no transfers to the departed");
        // Survivors keep executing in every round.
        for i in [0usize, 1, 3, 4] {
            assert_eq!(res.compute[i].len(), 4, "processor {i}");
        }
    }

    #[test]
    fn survivor_rounds_resolve_over_the_reduced_bus() {
        let p = params();
        let fault = RoundFault {
            processor: 0,
            round: 1,
        };
        let res = simulate_multiround_faulty(&p, 3, &[fault]).unwrap();
        // Rounds 1.. split 1/R of the load with the optimal fractions of
        // the 4-survivor sub-bus, visible in the bus transfer durations.
        let sub = BusParams::new(0.3, vec![1.5, 2.0, 2.5, 3.0]).unwrap();
        let sub_alpha = optimal::fractions(SystemModel::Cp, &sub);
        for &(i, r, ref seg) in &res.bus {
            if r == 0 {
                continue;
            }
            let pos = [1usize, 2, 3, 4]
                .iter()
                .position(|&s| s == i)
                .expect("only survivors transfer");
            let want = sub_alpha[pos] / 3.0 * 0.3;
            assert!(
                (seg.duration() - want).abs() <= 1e-12,
                "round {r} processor {i}: {} vs {want}",
                seg.duration()
            );
        }
    }

    #[test]
    fn fault_validation() {
        let p = params();
        assert_eq!(
            simulate_multiround_faulty(&p, 2, &[RoundFault { processor: 9, round: 0 }]),
            Err(MultiroundError::UnknownProcessor { processor: 9, m: 5 })
        );
        let everyone: Vec<RoundFault> = (0..5)
            .map(|processor| RoundFault { processor, round: 1 })
            .collect();
        assert_eq!(
            simulate_multiround_faulty(&p, 3, &everyone),
            Err(MultiroundError::AllDeparted { round: 1 })
        );
        // A fault scheduled past the last round never fires.
        let late = [RoundFault { processor: 0, round: 7 }];
        let res = simulate_multiround_faulty(&p, 3, &late).unwrap();
        assert_eq!(res, simulate_multiround(&p, 3).unwrap());
    }

    #[test]
    fn diminishing_returns() {
        // The marginal gain of extra rounds shrinks (no overhead model, so
        // gains monotonically approach the comm/compute overlap bound).
        let p = params();
        let t1 = simulate_multiround(&p, 1).unwrap().makespan;
        let t2 = simulate_multiround(&p, 2).unwrap().makespan;
        let t8 = simulate_multiround(&p, 8).unwrap().makespan;
        let t16 = simulate_multiround(&p, 16).unwrap().makespan;
        assert!(t1 - t2 > t8 - t16, "early rounds matter most");
    }
}
