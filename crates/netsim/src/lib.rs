//! # `dls-netsim` — discrete-event bus-network simulator
//!
//! An independent executor for divisible-load schedules on one-port bus
//! networks. Where `dls-dlt` computes finishing times from the closed-form
//! equations (Eqs. 1–3), this crate *runs* the schedule: the load
//! originator transmits fractions one at a time over a shared bus
//! (one-port model) and each processor is a small state machine that starts
//! computing when its data arrives.
//!
//! Two consumers:
//!
//! * **Validation** — the simulated finish times must agree with the closed
//!   forms to rounding error; integration tests and experiments E1–E3 rely
//!   on this cross-check.
//! * **Visualization** — the per-processor communication/computation
//!   [`Timeline`] regenerates the paper's Figures 1–3 as ASCII Gantt charts
//!   ([`gantt`]).
//!
//! The event engine ([`engine`]) is a generic, deterministic
//! priority-queue DES kernel (FIFO tie-breaking) reused by the protocol
//! crate's timing accounting.
//!
//! ```
//! use dls_dlt::{BusParams, SystemModel, optimal};
//! use dls_netsim::{simulate, SessionSpec};
//!
//! let params = BusParams::new(0.2, vec![1.0, 2.0, 3.0]).unwrap();
//! let alloc = optimal::fractions(SystemModel::NcpFe, &params);
//! let timeline = simulate(&SessionSpec::new(SystemModel::NcpFe, params.clone(), alloc));
//! // The simulator agrees with the closed form.
//! let t_closed = dls_dlt::optimal::optimal_makespan(SystemModel::NcpFe, &params);
//! assert!((timeline.makespan - t_closed).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod gantt;
pub mod linear;
pub mod multiround;
mod session;

pub use session::{simulate, ProcTimeline, Segment, SessionSpec, Timeline};
