//! ASCII Gantt rendering of a [`Timeline`] — regenerates the paper's
//! Figures 1–3.
//!
//! The figures show a "Communication" row (bus occupancy, labelled with the
//! fraction being carried) above one row per processor (computation
//! interval). We render the same layout, scaled to a fixed character width:
//!
//! ```text
//! Communication |a2====|a3=======|
//! P1            |######################|
//! P2                   |###############|
//! P3                             |#####|
//! ```

use crate::session::Timeline;
use std::fmt::Write as _;

/// Rendering options.
#[derive(Debug, Clone, Copy)]
pub struct GanttOptions {
    /// Character columns used for the time axis.
    pub width: usize,
    /// Show start/end times on a footer scale.
    pub show_scale: bool,
}

impl Default for GanttOptions {
    fn default() -> Self {
        GanttOptions {
            width: 72,
            show_scale: true,
        }
    }
}

fn col(t: f64, makespan: f64, width: usize) -> usize {
    if makespan <= 0.0 {
        return 0;
    }
    ((t / makespan) * width as f64).round() as usize
}

/// Renders the timeline as an ASCII Gantt chart.
pub fn render(timeline: &Timeline, opts: &GanttOptions) -> String {
    let width = opts.width.max(16);
    let span = timeline.makespan.max(f64::MIN_POSITIVE);
    let label_width = 4 + timeline.procs.len().to_string().len();
    let mut out = String::new();

    // Communication row: bus transfers labelled by recipient.
    let mut comm = vec![' '; width + 1];
    for &(dst, seg) in &timeline.bus {
        let a = col(seg.start, span, width);
        let b = col(seg.end, span, width).max(a + 1);
        let label: Vec<char> = format!("a{}", dst + 1).chars().collect();
        for (k, cell) in comm[a..b.min(width + 1)].iter_mut().enumerate() {
            *cell = if k == 0 {
                '|'
            } else if k - 1 < label.len() {
                label[k - 1]
            } else {
                '='
            };
        }
        if b <= width {
            comm[b] = '|';
        }
    }
    let _ = writeln!(
        out,
        "{:<label_width$} {}",
        "Comm",
        comm.iter().collect::<String>().trim_end()
    );

    // One row per processor: computation interval.
    for (i, p) in timeline.procs.iter().enumerate() {
        let mut row = vec![' '; width + 1];
        if let Some(seg) = p.compute {
            let a = col(seg.start, span, width);
            let b = col(seg.end, span, width).max(a + 1);
            for cell in row[a..b.min(width + 1)].iter_mut() {
                *cell = '#';
            }
            row[a] = '|';
            if b <= width {
                row[b] = '|';
            }
        }
        let _ = writeln!(
            out,
            "{:<label_width$} {}",
            format!("P{}", i + 1),
            row.iter().collect::<String>().trim_end()
        );
    }

    if opts.show_scale {
        let _ = writeln!(
            out,
            "{:<label_width$} 0{:>w$.4}",
            "t",
            timeline.makespan,
            w = width
        );
    }
    out
}

/// Renders with default options.
pub fn render_default(timeline: &Timeline) -> String {
    render(timeline, &GanttOptions::default())
}

/// Renders a multi-installment execution (`dls_netsim::multiround`) — each
/// processor row shows one bar per installment, visualizing the pipelining.
pub fn render_multiround(
    result: &crate::multiround::MultiroundResult,
    opts: &GanttOptions,
) -> String {
    let width = opts.width.max(16);
    let span = result.makespan.max(f64::MIN_POSITIVE);
    let label_width = 4 + result.compute.len().to_string().len();
    let mut out = String::new();

    // Bus row: every transfer, labelled by recipient.
    let mut comm = vec![' '; width + 1];
    for &(dst, _round, seg) in &result.bus {
        let a = col(seg.start, span, width);
        let b = col(seg.end, span, width).max(a + 1);
        let label: Vec<char> = format!("a{}", dst + 1).chars().collect();
        for (k, cell) in comm[a..b.min(width + 1)].iter_mut().enumerate() {
            *cell = if k == 0 {
                '|'
            } else if k - 1 < label.len() {
                label[k - 1]
            } else {
                '='
            };
        }
    }
    let _ = writeln!(
        out,
        "{:<label_width$} {}",
        "Comm",
        comm.iter().collect::<String>().trim_end()
    );

    for (i, segs) in result.compute.iter().enumerate() {
        let mut row = vec![' '; width + 1];
        for seg in segs {
            let a = col(seg.start, span, width);
            let b = col(seg.end, span, width).max(a + 1);
            for cell in row[a..b.min(width + 1)].iter_mut() {
                *cell = '#';
            }
            row[a] = '|';
        }
        let _ = writeln!(
            out,
            "{:<label_width$} {}",
            format!("P{}", i + 1),
            row.iter().collect::<String>().trim_end()
        );
    }
    if opts.show_scale {
        let _ = writeln!(
            out,
            "{:<label_width$} 0{:>w$.4}",
            "t",
            result.makespan,
            w = width
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{simulate, SessionSpec};
    use dls_dlt::{optimal, BusParams, SystemModel, ALL_MODELS};

    fn timeline(model: SystemModel) -> Timeline {
        let p = BusParams::new(0.2, vec![1.0, 2.0, 3.0]).unwrap();
        let a = optimal::fractions(model, &p);
        simulate(&SessionSpec::new(model, p, a))
    }

    #[test]
    fn renders_one_row_per_processor_plus_header() {
        for model in ALL_MODELS {
            let s = render_default(&timeline(model));
            let lines: Vec<&str> = s.lines().collect();
            // Comm + 3 processors + scale.
            assert_eq!(lines.len(), 5, "{model}:\n{s}");
            assert!(lines[0].starts_with("Comm"));
            assert!(lines[1].starts_with("P1"));
            assert!(lines[3].starts_with("P3"));
        }
    }

    #[test]
    fn compute_bars_present_for_all_computing_procs() {
        let s = render_default(&timeline(SystemModel::NcpFe));
        for line in s.lines().skip(1).take(3) {
            assert!(line.contains('#'), "missing bar in {line:?}");
        }
    }

    #[test]
    fn comm_row_labels_recipients() {
        let s = render_default(&timeline(SystemModel::NcpFe));
        let comm = s.lines().next().unwrap();
        // NCP-FE: transfers to P2 and P3 only.
        assert!(comm.contains("a2"));
        assert!(comm.contains("a3"));
        assert!(!comm.contains("a1"));
    }

    #[test]
    fn cp_comm_row_includes_first_worker() {
        let s = render_default(&timeline(SystemModel::Cp));
        assert!(s.lines().next().unwrap().contains("a1"));
    }

    #[test]
    fn scale_can_be_disabled() {
        let opts = GanttOptions {
            width: 40,
            show_scale: false,
        };
        let s = render(&timeline(SystemModel::Cp), &opts);
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn multiround_gantt_shows_installments() {
        let p = BusParams::new(0.3, vec![1.0, 2.0, 3.0]).unwrap();
        let res = crate::multiround::simulate_multiround(&p, 3).unwrap();
        let s = render_multiround(&res, &GanttOptions::default());
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5); // Comm + 3 procs + scale
        // Each processor row has 3 bar starts (one per installment).
        for line in &lines[1..4] {
            assert!(line.matches('|').count() >= 3, "{line:?}");
        }
        // 9 transfers on the bus.
        assert_eq!(res.bus.len(), 9);
    }

    #[test]
    fn ncp_fe_originator_bar_starts_at_left_edge() {
        let s = render_default(&timeline(SystemModel::NcpFe));
        let p1 = s.lines().nth(1).unwrap();
        let bar_start = p1.find('|').unwrap();
        // Label field is 5 wide + 1 space → bar at column 6.
        assert!(bar_start <= 6, "{p1:?}");
    }
}
