//! A minimal deterministic discrete-event engine.
//!
//! Events are ordered by simulated time with FIFO tie-breaking (a strictly
//! increasing sequence number), so identical inputs always replay the same
//! trace — the property every downstream test relies on.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A pending event at a simulated time.
struct Entry<E> {
    at: f64,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    /// The single ordering key: `(total_cmp on time, sequence number)`.
    ///
    /// Both `PartialEq` and `Ord` derive from this, so equality and ordering
    /// can never disagree — with bitwise `==` on `at`, two entries at `0.0`
    /// and `-0.0` would compare unequal yet sort as ties, breaking the
    /// `Ord`/`Eq` consistency contract `BinaryHeap` relies on.
    fn key_cmp(&self, other: &Self) -> Ordering {
        self.at
            .total_cmp(&other.at)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key_cmp(other) == Ordering::Equal
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to pop the earliest (time, seq).
        other.key_cmp(self)
    }
}

/// Deterministic future-event list.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: f64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue at time 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0.0,
        }
    }

    /// Current simulated time (time of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is NaN or earlier than the current time (events may
    /// not be scheduled in the past).
    pub fn schedule(&mut self, at: f64, event: E) {
        assert!(!at.is_nan(), "NaN event time");
        assert!(
            at >= self.now,
            "cannot schedule in the past: {at} < {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Schedules `event` after a non-negative delay from now.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        assert!(delay >= 0.0, "negative delay {delay}");
        self.schedule(self.now + delay, event);
    }

    /// Pops the earliest event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|e| {
            self.now = e.at;
            (e.at, e.event)
        })
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` iff no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drains the queue through `handler` until no events remain. The
    /// handler may schedule further events. Returns the final time.
    pub fn run(mut self, mut handler: impl FnMut(&mut Self, f64, E)) -> f64 {
        while let Some((at, ev)) = self.pop() {
            handler(&mut self, at, ev);
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        let mut seen = Vec::new();
        while let Some((t, e)) = q.pop() {
            seen.push((t, e));
        }
        assert_eq!(seen, vec![(1.0, "a"), (2.0, "b"), (3.0, "c")]);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(1.0, 2);
        q.schedule(1.0, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances() {
        let mut q = EventQueue::new();
        q.schedule(2.5, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 2.5);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(2.0, "first");
        q.pop();
        q.schedule_in(0.5, "second");
        assert_eq!(q.pop(), Some((2.5, "second")));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.pop();
        q.schedule(1.0, ());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule(f64::NAN, ());
    }

    #[test]
    fn run_drains_with_cascading_events() {
        // Each event spawns a shorter follow-up until a floor is reached.
        let mut q = EventQueue::new();
        q.schedule(1.0, 4u32);
        let end = q.run(|q, _t, remaining| {
            if remaining > 0 {
                q.schedule_in(1.0, remaining - 1);
            }
        });
        assert_eq!(end, 5.0);
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1.0, ());
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    /// `Entry` equality and ordering must agree on every float, including
    /// the `0.0`/`-0.0` pair where `==` and `total_cmp` diverge.
    #[test]
    fn entry_eq_consistent_with_ord() {
        let entry = |at, seq| Entry { at, seq, event: () };
        let cases = [
            (entry(0.0, 0), entry(-0.0, 0)),  // total_cmp: -0.0 < 0.0
            (entry(1.0, 0), entry(1.0, 0)),   // identical
            (entry(1.0, 0), entry(1.0, 1)),   // FIFO tie-break
            (entry(1.0, 2), entry(2.0, 1)),   // time dominates seq
        ];
        for (a, b) in &cases {
            assert_eq!(
                a == b,
                a.cmp(b) == Ordering::Equal,
                "eq/ord disagree at ({}, {}) vs ({}, {})",
                a.at, a.seq, b.at, b.seq
            );
            assert_eq!(a.cmp(b), b.cmp(a).reverse());
        }
        // -0.0 sorts after 0.0 under the inverted (min-heap) order and the
        // two are distinguishable — no silent tie.
        assert!(entry(0.0, 0) != entry(-0.0, 0));
    }
}
