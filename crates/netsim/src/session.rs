//! Executing a divisible-load schedule on the simulated bus.
//!
//! The originator holds the whole load and transmits each fraction to its
//! recipient as one bus transfer (one-port: transfers serialize). Each
//! processor is a state machine: `Idle → Receiving → Computing → Done`.
//! The originator itself follows the model: with a front end it computes
//! from time 0 in parallel with its sends (NCP-FE); without one it computes
//! only after its last send (NCP-NFE); the CP originator never computes.

use crate::engine::EventQueue;
use dls_dlt::{BusParams, SystemModel};
use serde::{Deserialize, Serialize};

/// A closed time interval `[start, end]` on the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Interval start.
    pub start: f64,
    /// Interval end (`>= start`).
    pub end: f64,
}

impl Segment {
    /// Interval length.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// `true` iff `self` and `other` overlap in more than a point.
    pub fn overlaps(&self, other: &Segment) -> bool {
        self.start < other.end && other.start < self.end
    }
}

/// What one processor did during the session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcTimeline {
    /// Bus transfer delivering this processor's fraction (`None` for the
    /// originator, whose data never crosses the bus, and for zero-sized
    /// fractions).
    pub recv: Option<Segment>,
    /// Computation interval (`None` for the computeless CP originator or a
    /// zero fraction).
    pub compute: Option<Segment>,
}

/// The complete simulated execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    /// Per-processor activity, indexed like the allocation vector. For the
    /// CP model, index 0..m are the workers (the control processor `P_0` is
    /// not part of the vector; its sends appear as the workers' `recv`
    /// segments).
    pub procs: Vec<ProcTimeline>,
    /// Bus occupancy: every transfer, in transmission order, tagged with
    /// the receiving processor's index.
    pub bus: Vec<(usize, Segment)>,
    /// Latest finish over all processors.
    pub makespan: f64,
}

impl Timeline {
    /// Per-processor finish times (end of compute, or of receive when a
    /// processor computes nothing; 0 if it does nothing at all).
    pub fn finish_times(&self) -> Vec<f64> {
        self.procs
            .iter()
            .map(|p| {
                p.compute
                    .map(|s| s.end)
                    .or(p.recv.map(|s| s.end))
                    .unwrap_or(0.0)
            })
            .collect()
    }

    /// Checks the one-port invariant: no two bus transfers overlap.
    pub fn bus_is_one_port(&self) -> bool {
        for i in 0..self.bus.len() {
            for j in i + 1..self.bus.len() {
                if self.bus[i].1.overlaps(&self.bus[j].1) {
                    return false;
                }
            }
        }
        true
    }
}

/// A schedule to execute: model, *execution-rate* parameters (use observed
/// rates `w̃` to simulate slacking processors) and the allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSpec {
    model: SystemModel,
    params: BusParams,
    alloc: Vec<f64>,
}

impl SessionSpec {
    /// Bundles a schedule for execution.
    ///
    /// # Panics
    /// Panics if the allocation length does not match the parameters or an
    /// allocation entry is negative/NaN.
    pub fn new(model: SystemModel, params: BusParams, alloc: Vec<f64>) -> Self {
        assert_eq!(alloc.len(), params.m(), "allocation length mismatch");
        assert!(
            alloc.iter().all(|a| a.is_finite() && *a >= 0.0),
            "allocation entries must be finite and non-negative"
        );
        SessionSpec {
            model,
            params,
            alloc,
        }
    }

    /// The system model.
    pub fn model(&self) -> SystemModel {
        self.model
    }
}

/// Events inside the session simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    /// The bus finished delivering processor `i`'s fraction.
    TransferEnd { dst: usize },
    /// Processor `i` finished computing.
    ComputeEnd { proc_: usize },
}

/// Runs the schedule through the event engine and returns the timeline.
pub fn simulate(spec: &SessionSpec) -> Timeline {
    let m = spec.params.m();
    let z = spec.params.z();
    let w = spec.params.w();
    let alloc = &spec.alloc;
    let originator = spec.model.originator(m);

    let mut procs = vec![
        ProcTimeline {
            recv: None,
            compute: None,
        };
        m
    ];
    let mut bus = Vec::new();
    let mut q: EventQueue<Ev> = EventQueue::new();

    // Recipients in index order (Theorem 2.2: order does not matter for the
    // optimum; we use the paper's canonical order).
    let recipients: Vec<usize> = (0..m).filter(|&i| Some(i) != originator).collect();

    // Schedule all transfers back-to-back (the originator is one-port).
    let mut t = 0.0;
    for &i in &recipients {
        let dur = alloc[i] * z;
        let seg = Segment {
            start: t,
            end: t + dur,
        };
        if alloc[i] > 0.0 {
            bus.push((i, seg));
            procs[i].recv = Some(seg);
        }
        t = seg.end;
        q.schedule(seg.end, Ev::TransferEnd { dst: i });
    }
    let last_send_end = t;

    // Originator computation per model.
    match spec.model {
        SystemModel::Cp => {
            // No originator among the workers — everyone receives.
        }
        SystemModel::NcpFe => {
            let lo = originator.expect("ncp model has an originator");
            if alloc[lo] > 0.0 {
                // Front end: compute from time 0, overlapping the sends.
                q.schedule(alloc[lo] * w[lo], Ev::ComputeEnd { proc_: lo });
                procs[lo].compute = Some(Segment {
                    start: 0.0,
                    end: alloc[lo] * w[lo],
                });
            }
        }
        SystemModel::NcpNfe => {
            let lo = originator.expect("ncp model has an originator");
            if alloc[lo] > 0.0 {
                // No front end: compute strictly after the last send.
                let end = last_send_end + alloc[lo] * w[lo];
                q.schedule(end, Ev::ComputeEnd { proc_: lo });
                procs[lo].compute = Some(Segment {
                    start: last_send_end,
                    end,
                });
            }
        }
    }

    // Drive the event loop: a completed transfer starts the recipient's
    // computation.
    let makespan = q.run(|q, now, ev| match ev {
        Ev::TransferEnd { dst } => {
            if alloc[dst] > 0.0 {
                let end = now + alloc[dst] * w[dst];
                procs[dst].compute = Some(Segment { start: now, end });
                q.schedule(end, Ev::ComputeEnd { proc_: dst });
            }
        }
        Ev::ComputeEnd { .. } => {}
    });

    Timeline {
        procs,
        bus,
        makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_dlt::{finish_times, optimal, ALL_MODELS};

    fn params() -> BusParams {
        BusParams::new(0.2, vec![1.0, 2.0, 3.0, 4.0]).unwrap()
    }

    #[test]
    fn simulator_matches_closed_form_at_optimum() {
        for model in ALL_MODELS {
            let p = params();
            let alloc = optimal::fractions(model, &p);
            let tl = simulate(&SessionSpec::new(model, p.clone(), alloc.clone()));
            let closed = finish_times(model, &p, &alloc);
            let simulated = tl.finish_times();
            for (s, c) in simulated.iter().zip(&closed) {
                assert!((s - c).abs() < 1e-12, "{model}: {simulated:?} vs {closed:?}");
            }
        }
    }

    #[test]
    fn simulator_matches_closed_form_off_optimum() {
        let allocs = [
            vec![0.25, 0.25, 0.25, 0.25],
            vec![0.7, 0.1, 0.1, 0.1],
            vec![0.0, 0.5, 0.5, 0.0],
        ];
        for model in ALL_MODELS {
            for alloc in &allocs {
                let p = params();
                let tl = simulate(&SessionSpec::new(model, p.clone(), alloc.clone()));
                let closed = finish_times(model, &p, alloc);
                for (i, (s, c)) in tl.finish_times().iter().zip(&closed).enumerate() {
                    // Zero fractions finish "at 0" in the simulator (they do
                    // nothing) but the closed form still charges the comm
                    // prefix; skip them.
                    if alloc[i] == 0.0 {
                        continue;
                    }
                    assert!((s - c).abs() < 1e-12, "{model} {alloc:?} P{i}");
                }
            }
        }
    }

    #[test]
    fn one_port_invariant() {
        for model in ALL_MODELS {
            let p = params();
            let alloc = optimal::fractions(model, &p);
            let tl = simulate(&SessionSpec::new(model, p, alloc));
            assert!(tl.bus_is_one_port(), "{model}");
        }
    }

    #[test]
    fn compute_follows_receive() {
        for model in ALL_MODELS {
            let p = params();
            let alloc = optimal::fractions(model, &p);
            let tl = simulate(&SessionSpec::new(model, p, alloc));
            for (i, proc_) in tl.procs.iter().enumerate() {
                if let (Some(r), Some(c)) = (proc_.recv, proc_.compute) {
                    assert!(
                        c.start >= r.end - 1e-15,
                        "{model} P{i}: compute starts before data arrives"
                    );
                }
            }
        }
    }

    #[test]
    fn cp_everyone_receives() {
        let p = params();
        let alloc = optimal::fractions(SystemModel::Cp, &p);
        let tl = simulate(&SessionSpec::new(SystemModel::Cp, p, alloc));
        assert!(tl.procs.iter().all(|pr| pr.recv.is_some()));
        assert_eq!(tl.bus.len(), 4);
    }

    #[test]
    fn ncp_fe_originator_computes_from_zero() {
        let p = params();
        let alloc = optimal::fractions(SystemModel::NcpFe, &p);
        let tl = simulate(&SessionSpec::new(SystemModel::NcpFe, p, alloc));
        let orig = &tl.procs[0];
        assert!(orig.recv.is_none());
        assert_eq!(orig.compute.unwrap().start, 0.0);
        assert_eq!(tl.bus.len(), 3);
    }

    #[test]
    fn ncp_nfe_originator_computes_after_sends() {
        let p = params();
        let alloc = optimal::fractions(SystemModel::NcpNfe, &p);
        let tl = simulate(&SessionSpec::new(SystemModel::NcpNfe, p, alloc));
        let orig = &tl.procs[3];
        assert!(orig.recv.is_none());
        let last_bus_end = tl
            .bus
            .iter()
            .map(|(_, s)| s.end)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((orig.compute.unwrap().start - last_bus_end).abs() < 1e-15);
    }

    #[test]
    fn slacking_execution_rates_extend_compute() {
        // Simulate at observed rates: P2 runs 3x slower than the allocation
        // assumed.
        let p = params();
        let alloc = optimal::fractions(SystemModel::NcpFe, &p);
        let slow = p.with_rate(1, p.w()[1] * 3.0);
        let tl_fast = simulate(&SessionSpec::new(SystemModel::NcpFe, p, alloc.clone()));
        let tl_slow = simulate(&SessionSpec::new(SystemModel::NcpFe, slow, alloc));
        assert!(tl_slow.makespan > tl_fast.makespan);
        assert!(
            tl_slow.procs[1].compute.unwrap().duration()
                > tl_fast.procs[1].compute.unwrap().duration() * 2.9
        );
    }

    #[test]
    fn zero_fraction_processor_does_nothing() {
        let p = params();
        let tl = simulate(&SessionSpec::new(
            SystemModel::Cp,
            p,
            vec![0.5, 0.0, 0.3, 0.2],
        ));
        assert!(tl.procs[1].recv.is_none());
        assert!(tl.procs[1].compute.is_none());
        assert_eq!(tl.bus.len(), 3);
    }

    #[test]
    fn single_processor_sessions() {
        let p = BusParams::new(0.5, vec![2.0]).unwrap();
        // NCP-FE: the lone originator just computes.
        let tl = simulate(&SessionSpec::new(SystemModel::NcpFe, p.clone(), vec![1.0]));
        assert_eq!(tl.makespan, 2.0);
        assert!(tl.bus.is_empty());
        // CP: the lone worker receives then computes.
        let tl = simulate(&SessionSpec::new(SystemModel::Cp, p, vec![1.0]));
        assert_eq!(tl.makespan, 2.5);
        assert_eq!(tl.bus.len(), 1);
    }

    #[test]
    fn segment_helpers() {
        let a = Segment { start: 0.0, end: 1.0 };
        let b = Segment { start: 0.5, end: 2.0 };
        let c = Segment { start: 1.0, end: 2.0 };
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c), "touching endpoints do not overlap");
        assert_eq!(b.duration(), 1.5);
    }
}
