//! Discrete-event executor for the linear daisy-chain network
//! (`dls_dlt::linear`), cross-validating its closed-form solution the same
//! way [`crate::simulate`] validates the bus models.
//!
//! Store-and-forward with front ends: each processor starts computing its
//! own fraction the moment its data arrives and simultaneously forwards the
//! remaining tail down the next link.

use crate::engine::EventQueue;
use crate::session::{ProcTimeline, Segment, Timeline};
use dls_dlt::linear::LinearParams;

/// Events in the chain execution.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// The tail for processors `> i` finished arriving at `P_{i+1}`.
    ArrivalAt { proc_: usize },
    /// `P_i` finished computing.
    ComputeEnd,
}

/// Runs an allocation down the chain and returns the execution timeline.
///
/// The `bus` field of the returned [`Timeline`] holds one segment per
/// *link* transfer, tagged with the receiving processor.
///
/// # Panics
/// Panics if `alloc.len() != params.m()` or an entry is negative/NaN.
pub fn simulate_chain(params: &LinearParams, alloc: &[f64]) -> Timeline {
    let m = params.m();
    assert_eq!(alloc.len(), m, "allocation length mismatch");
    assert!(
        alloc.iter().all(|a| a.is_finite() && *a >= 0.0),
        "allocation entries must be finite and non-negative"
    );
    let w = params.w();
    let z = params.links();

    let mut procs = vec![
        ProcTimeline {
            recv: None,
            compute: None,
        };
        m
    ];
    let mut bus = Vec::new();
    let mut q: EventQueue<Ev> = EventQueue::new();

    // Precompute tail sums: tail[i] = Σ_{j>i} α_j.
    let mut tail = vec![0.0; m];
    for i in (0..m - 1).rev() {
        tail[i] = tail[i + 1] + alloc[i + 1];
    }

    // P_1 holds the load at t=0.
    q.schedule(0.0, Ev::ArrivalAt { proc_: 0 });
    let makespan = {
        let mut arrival = vec![f64::NAN; m];
        q.run(|q, now, ev| match ev {
            Ev::ArrivalAt { proc_ } => {
                arrival[proc_] = now;
                if proc_ > 0 && alloc[proc_] + tail[proc_] > 0.0 {
                    // Record the inbound transfer segment.
                    let dur = z[proc_ - 1] * (alloc[proc_] + tail[proc_]);
                    let seg = Segment {
                        start: now - dur,
                        end: now,
                    };
                    bus.push((proc_, seg));
                    procs[proc_].recv = Some(seg);
                }
                if alloc[proc_] > 0.0 {
                    let end = now + alloc[proc_] * w[proc_];
                    procs[proc_].compute = Some(Segment { start: now, end });
                    q.schedule(end, Ev::ComputeEnd);
                }
                // Forward the tail while computing (front end).
                if proc_ + 1 < m {
                    let dur = z[proc_] * (alloc[proc_ + 1] + tail[proc_ + 1]);
                    q.schedule(now + dur, Ev::ArrivalAt { proc_: proc_ + 1 });
                }
            }
            Ev::ComputeEnd => {}
        })
    };

    Timeline {
        procs,
        bus,
        makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_dlt::linear;

    fn params() -> LinearParams {
        LinearParams::new(vec![0.2, 0.3, 0.1], vec![1.0, 2.0, 1.5, 3.0]).unwrap()
    }

    #[test]
    fn matches_closed_form_at_optimum() {
        let p = params();
        let a = linear::fractions(&p);
        let tl = simulate_chain(&p, &a);
        let closed = linear::finish_times(&p, &a);
        for (s, c) in tl.finish_times().iter().zip(&closed) {
            assert!((s - c).abs() < 1e-12, "{s} vs {c}");
        }
        assert!((tl.makespan - linear::optimal_makespan(&p)).abs() < 1e-12);
    }

    #[test]
    fn matches_closed_form_off_optimum() {
        let p = params();
        for alloc in [
            vec![0.25; 4],
            vec![0.7, 0.1, 0.1, 0.1],
            vec![0.1, 0.2, 0.3, 0.4],
        ] {
            let tl = simulate_chain(&p, &alloc);
            let closed = linear::finish_times(&p, &alloc);
            for (s, c) in tl.finish_times().iter().zip(&closed) {
                assert!((s - c).abs() < 1e-12, "{alloc:?}");
            }
        }
    }

    #[test]
    fn transfers_are_sequential_down_the_chain() {
        let p = params();
        let a = linear::fractions(&p);
        let tl = simulate_chain(&p, &a);
        assert_eq!(tl.bus.len(), 3);
        for k in 1..tl.bus.len() {
            assert!(
                tl.bus[k].1.start >= tl.bus[k - 1].1.start,
                "downstream transfers start later"
            );
        }
    }

    #[test]
    fn originator_computes_from_zero() {
        let p = params();
        let a = linear::fractions(&p);
        let tl = simulate_chain(&p, &a);
        assert_eq!(tl.procs[0].compute.unwrap().start, 0.0);
        assert!(tl.procs[0].recv.is_none());
    }

    #[test]
    fn single_processor_chain() {
        let p = LinearParams::new(vec![], vec![2.0]).unwrap();
        let tl = simulate_chain(&p, &[1.0]);
        assert_eq!(tl.makespan, 2.0);
        assert!(tl.bus.is_empty());
    }

    #[test]
    fn zero_fraction_downstream_still_forwards() {
        // P2 gets nothing but P3 does: the tail still flows through.
        let p = LinearParams::new(vec![0.5, 0.5], vec![1.0, 1.0, 1.0]).unwrap();
        let tl = simulate_chain(&p, &[0.5, 0.0, 0.5]);
        assert!(tl.procs[1].compute.is_none());
        assert!(tl.procs[2].compute.is_some());
        // P3's data crossed two links: arrival = 0.5·0.5 + 0.5·0.5.
        assert!((tl.procs[2].compute.unwrap().start - 0.5).abs() < 1e-12);
    }
}
