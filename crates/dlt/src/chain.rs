//! Persistent chain state for incremental re-solves — the auction engine's
//! cache layer.
//!
//! [`crate::optimal::fractions`] and [`LeaveOneOut`](crate::LeaveOneOut)
//! both rebuild the telescoped chain products from scratch on every call:
//! `m − 1` divisions for the link factors `k_j = w_j/(z + w_{j+1})`, the
//! dependent product chain `u_{j+1} = u_j·k_j`, and the prefix/suffix sums —
//! plus one heap allocation per vector. In an auction, consecutive solves
//! differ in a *single* bid: everything upstream of the changed position is
//! unchanged, and the downstream suffix is a pure splice.
//!
//! [`ChainState`] keeps `k`, `u`, and the prefix sums alive between solves.
//! [`ChainState::update_bid`] refreshes the (at most two) link factors that
//! mention `w_i` — two divisions — and re-runs the product/prefix recursion
//! only for `j ≥ max(i, 1)`. The suffix sums are only needed by the payment
//! queries ([`ChainState::makespan_without`]), so they are rebuilt lazily
//! behind a dirty flag; quote evaluation (`fractions` + makespan) never pays
//! for them.
//!
//! ## Bit-exactness contract
//!
//! Every cached quantity is computed with the *same expressions in the same
//! order* as the from-scratch solvers: `k = w_j/(z + w_{j+1})` then
//! `u_{j+1} = u_j·k` (NCP-NFE last link `w_{m−2}/w_{m−1}`), prefix
//! `p_j = p_{j−1} + u_j`, suffix `s_j = s_{j+1} + u_j`. IEEE-754 operations
//! are deterministic, so an incrementally updated [`ChainState`] yields
//! results **bit-identical** to [`ChainState::new`] on the final rates, to
//! [`crate::optimal::fractions`], and to the
//! [`LeaveOneOut`](crate::LeaveOneOut) splice queries. The
//! `engine_differential` integration tests pin this with `f64::to_bits`
//! comparisons across all three models.

use crate::model::{BusParams, SystemModel};

/// Cached chain products of one market: link factors, unnormalized
/// fractions, prefix sums, and (lazily) suffix sums.
///
/// Construction is O(m); [`ChainState::update_bid`] is O(m − i) with two
/// divisions; every query is allocation-free.
#[derive(Debug, Clone)]
pub struct ChainState {
    model: SystemModel,
    params: BusParams,
    /// Link factors: `u[j+1] = u[j]·k[j]` (length `m − 1`). For NCP-NFE the
    /// last entry is the front-end-free `w[m−2]/w[m−1]`.
    k: Vec<f64>,
    /// Unnormalized fractions, `u[0] = 1`.
    u: Vec<f64>,
    /// `prefix[j] = u[0] + … + u[j]`.
    prefix: Vec<f64>,
    /// `suffix[j] = u[j] + … + u[m−1]`; valid iff `!suffix_dirty`.
    suffix: Vec<f64>,
    suffix_dirty: bool,
}

impl ChainState {
    /// Builds the chain state for `params` in O(m).
    pub fn new(model: SystemModel, params: &BusParams) -> Self {
        let m = params.m();
        let mut state = ChainState {
            model,
            params: params.clone(),
            k: Vec::with_capacity(m.saturating_sub(1)),
            u: Vec::with_capacity(m),
            prefix: Vec::with_capacity(m),
            suffix: Vec::with_capacity(m),
            suffix_dirty: true,
        };
        state.rebuild();
        state
    }

    /// The system model the chain was built for.
    pub fn model(&self) -> SystemModel {
        self.model
    }

    /// The current parameters (bids) behind the cached products.
    pub fn params(&self) -> &BusParams {
        &self.params
    }

    /// Number of processors `m`.
    pub fn m(&self) -> usize {
        self.params.m()
    }

    /// The link factor for link `j` (connecting `u[j]` to `u[j+1]`),
    /// computed with exactly the expression the from-scratch solvers use.
    fn link_value(&self, j: usize) -> f64 {
        let w = self.params.w();
        if self.model == SystemModel::NcpNfe && j == w.len() - 2 {
            w[j] / w[j + 1]
        } else {
            w[j] / (self.params.z() + w[j + 1])
        }
    }

    /// From-scratch recompute of every cached product into the retained
    /// buffers (no allocation once the buffers have grown). This is the
    /// reference path: [`ChainState::update_bid`] must agree with a
    /// `rebuild` on the same rates bit-for-bit.
    pub fn rebuild(&mut self) {
        let m = self.params.m();
        self.k.clear();
        self.u.clear();
        self.prefix.clear();
        self.u.push(1.0);
        self.prefix.push(1.0);
        for j in 0..m - 1 {
            let k = self.link_value(j);
            self.k.push(k);
            let next = self.u[j] * k;
            self.u.push(next);
            let p = self.prefix[j] + next;
            self.prefix.push(p);
        }
        self.suffix_dirty = true;
    }

    /// Replaces bid `i` and splices the cached products: refreshes the (at
    /// most two) link factors mentioning `w[i]`, then re-runs the
    /// product/prefix recursion for `j ≥ max(i, 1)` only. Suffix sums are
    /// invalidated, not recomputed (they are rebuilt lazily by the payment
    /// queries).
    ///
    /// # Panics
    /// Panics if `i` is out of bounds or the new rate is not finite and
    /// positive (mirrors [`BusParams::with_rate`]; validated callers like
    /// `dls-mechanism`'s `AuctionEngine` check first and return typed
    /// errors).
    pub fn update_bid(&mut self, i: usize, w_i: f64) {
        let m = self.params.m();
        assert!(i < m, "processor index {i} out of range for m = {m}");
        self.params.set_rate(i, w_i);
        if m == 1 {
            // No links; u = prefix = [1.0] independent of the rate.
            self.suffix_dirty = true;
            return;
        }
        if i > 0 {
            self.k[i - 1] = self.link_value(i - 1);
        }
        if i < m - 1 {
            self.k[i] = self.link_value(i);
        }
        // u[0] = 1 never changes; everything from max(i, 1) is downstream
        // of a refreshed link. Same recurrence, same op order as rebuild().
        for j in i.max(1)..m {
            let next = self.u[j - 1] * self.k[j - 1];
            self.u[j] = next;
            self.prefix[j] = self.prefix[j - 1] + next;
        }
        self.suffix_dirty = true;
    }

    /// [`ChainState::update_bid`] followed by a full [`ChainState::rebuild`]
    /// — the from-scratch fallback path the incremental splice is
    /// differential-tested (and benchmarked) against.
    ///
    /// # Panics
    /// Same contract as [`ChainState::update_bid`].
    pub fn update_bid_rebuild(&mut self, i: usize, w_i: f64) {
        let m = self.params.m();
        assert!(i < m, "processor index {i} out of range for m = {m}");
        self.params.set_rate(i, w_i);
        self.rebuild();
    }

    /// Replaces the whole rate vector and rebuilds — the batch layer's
    /// market-reload path (retains every buffer, so reloading `n` markets
    /// of equal size through one `ChainState` performs zero allocations
    /// after the first).
    ///
    /// # Panics
    /// Panics if `w.len() != self.m()` or any rate is invalid.
    pub fn reload(&mut self, w: &[f64]) {
        assert_eq!(w.len(), self.params.m(), "rate vector length mismatch");
        for (i, &x) in w.iter().enumerate() {
            self.params.set_rate(i, x);
        }
        self.rebuild();
    }

    /// Head cost `c(x)` of a multi-processor market whose first surviving
    /// processor has rate `x` (same per-model split as the leave-one-out
    /// solver).
    fn head_cost(&self, x: f64) -> f64 {
        match self.model {
            SystemModel::NcpFe => x,
            SystemModel::Cp | SystemModel::NcpNfe => self.params.z() + x,
        }
    }

    /// Optimal makespan `T(α(b), b)` of the full market, O(1) from the
    /// cached prefix sums. Bit-identical to
    /// [`LeaveOneOut::optimal_makespan`](crate::LeaveOneOut::optimal_makespan).
    pub fn optimal_makespan(&self) -> f64 {
        let m = self.params.m();
        let w = self.params.w();
        if m == 1 {
            return match self.model {
                SystemModel::Cp => self.params.z() + w[0],
                SystemModel::NcpFe | SystemModel::NcpNfe => w[0],
            };
        }
        self.head_cost(w[0]) / self.prefix[m - 1]
    }

    /// Writes the optimal fractions `α(b)` into `out` (cleared first) with
    /// no allocation beyond `out`'s capacity. Bit-identical to
    /// [`crate::optimal::fractions`] on the same rates.
    pub fn fractions_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(&self.u);
        let total = self.prefix[self.prefix.len() - 1];
        for x in out.iter_mut() {
            *x /= total;
        }
    }

    /// Rebuilds the suffix sums if a bid update invalidated them.
    fn ensure_suffix(&mut self) {
        if !self.suffix_dirty {
            return;
        }
        let m = self.u.len();
        self.suffix.clear();
        self.suffix.resize(m, 0.0);
        for i in (0..m).rev() {
            self.suffix[i] = if i + 1 == m {
                self.u[i]
            } else {
                self.suffix[i + 1] + self.u[i]
            };
        }
        self.suffix_dirty = false;
    }

    /// Optimal makespan of the market with processor `i` removed — the
    /// payment bonus term — in O(1) after the (lazy, O(m)) suffix rebuild.
    ///
    /// Returns `None` when `i` is out of range or no reduced market exists
    /// (`m ≤ 1`). Bit-identical to
    /// [`LeaveOneOut::makespan_without`](crate::LeaveOneOut::makespan_without):
    /// the splice formulas below mirror that solver operation-for-operation.
    pub fn makespan_without(&mut self, i: usize) -> Option<f64> {
        let m = self.params.m();
        if m <= 1 || i >= m {
            return None;
        }
        let z = self.params.z();
        if m == 2 {
            let r = self.params.w()[1 - i];
            return Some(match self.model {
                SystemModel::Cp => z + r,
                SystemModel::NcpFe | SystemModel::NcpNfe => r,
            });
        }
        self.ensure_suffix();
        let w = self.params.w();
        if i == 0 {
            return Some(self.head_cost(w[1]) * self.u[1] / self.suffix[1]);
        }
        if i == m - 1 && self.model == SystemModel::NcpNfe {
            let wl = w[m - 2];
            let tail = self.u[m - 2] * (z + wl) / wl;
            let s = self.prefix[m - 3] + tail;
            return Some(self.head_cost(w[0]) / s);
        }
        let s = if i == m - 1 {
            self.prefix[i - 1]
        } else {
            let rho = (z + w[i]) / w[i];
            self.prefix[i - 1] + rho * self.suffix[i + 1]
        };
        Some(self.head_cost(w[0]) / s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loo::LeaveOneOut;
    use crate::model::ALL_MODELS;
    use crate::optimal;

    fn params(z: f64, w: &[f64]) -> BusParams {
        BusParams::new(z, w.to_vec()).unwrap()
    }

    fn bits(xs: &[f64]) -> Vec<u64> {
        xs.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn fresh_chain_matches_fractions_bitwise() {
        let p = params(0.3, &[1.0, 2.5, 0.8, 3.2, 1.7, 2.2]);
        for model in ALL_MODELS {
            let chain = ChainState::new(model, &p);
            let mut got = Vec::new();
            chain.fractions_into(&mut got);
            assert_eq!(bits(&got), bits(&optimal::fractions(model, &p)), "{model}");
        }
    }

    #[test]
    fn update_bid_matches_rebuild_bitwise() {
        let p = params(0.25, &[1.0, 2.0, 3.0, 1.5, 2.5]);
        for model in ALL_MODELS {
            for i in 0..5 {
                let mut inc = ChainState::new(model, &p);
                let mut full = ChainState::new(model, &p);
                inc.update_bid(i, 1.75);
                full.update_bid_rebuild(i, 1.75);
                let (mut a, mut b) = (Vec::new(), Vec::new());
                inc.fractions_into(&mut a);
                full.fractions_into(&mut b);
                assert_eq!(bits(&a), bits(&b), "{model} i={i}");
                assert_eq!(
                    inc.optimal_makespan().to_bits(),
                    full.optimal_makespan().to_bits(),
                    "{model} i={i}"
                );
                for j in 0..5 {
                    assert_eq!(
                        inc.makespan_without(j).map(f64::to_bits),
                        full.makespan_without(j).map(f64::to_bits),
                        "{model} update {i} query {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn update_sequence_matches_from_scratch_bitwise() {
        // Many stacked updates must not drift from a fresh build on the
        // final rates — the cache never accumulates its own rounding.
        let p = params(0.2, &[1.0, 2.0, 3.0, 4.0]);
        for model in ALL_MODELS {
            let mut chain = ChainState::new(model, &p);
            let updates = [(2usize, 0.7), (0, 1.9), (3, 2.2), (1, 0.4), (3, 3.3)];
            let mut w = p.w().to_vec();
            for &(i, x) in &updates {
                chain.update_bid(i, x);
                w[i] = x;
            }
            let fresh = ChainState::new(model, &params(0.2, &w));
            let (mut a, mut b) = (Vec::new(), Vec::new());
            chain.fractions_into(&mut a);
            fresh.fractions_into(&mut b);
            assert_eq!(bits(&a), bits(&b), "{model}");
        }
    }

    #[test]
    fn makespan_without_matches_leave_one_out_bitwise() {
        let z = 0.3;
        let w = [1.0, 2.5, 0.8, 3.2, 1.7];
        let p = params(z, &w);
        for model in ALL_MODELS {
            let mut chain = ChainState::new(model, &p);
            let loo = LeaveOneOut::new(model, z, w.to_vec());
            for i in 0..w.len() {
                assert_eq!(
                    chain.makespan_without(i).map(f64::to_bits),
                    loo.makespan_without(i).map(f64::to_bits),
                    "{model} i={i}"
                );
            }
            assert_eq!(
                chain.optimal_makespan().to_bits(),
                loo.optimal_makespan().map(f64::to_bits).unwrap(),
                "{model}"
            );
        }
    }

    #[test]
    fn head_and_tail_updates_refresh_special_links() {
        // Head updates touch only k[0]; NFE originator updates touch the
        // front-end-free last link. Both must match a fresh build.
        for model in ALL_MODELS {
            for &(i, x) in &[(0usize, 0.5), (2usize, 4.0)] {
                let p = params(0.4, &[1.0, 2.0, 3.0]);
                let mut chain = ChainState::new(model, &p);
                chain.update_bid(i, x);
                let fresh = ChainState::new(model, &p.with_rate(i, x));
                let (mut a, mut b) = (Vec::new(), Vec::new());
                chain.fractions_into(&mut a);
                fresh.fractions_into(&mut b);
                assert_eq!(bits(&a), bits(&b), "{model} i={i}");
            }
        }
    }

    #[test]
    fn tiny_markets() {
        for model in ALL_MODELS {
            // m = 1: no links; makespan tracks the lone rate.
            let mut one = ChainState::new(model, &params(0.5, &[3.0]));
            let expected = if model == SystemModel::Cp { 3.5 } else { 3.0 };
            assert_eq!(one.optimal_makespan(), expected, "{model}");
            assert_eq!(one.makespan_without(0), None);
            one.update_bid(0, 2.0);
            let expected = if model == SystemModel::Cp { 2.5 } else { 2.0 };
            assert_eq!(one.optimal_makespan(), expected, "{model}");

            // m = 2: removal leaves a solo market; updates hit both link
            // shapes (plain and NFE front-end-free).
            let mut two = ChainState::new(model, &params(1.0, &[2.0, 3.0]));
            let loo = LeaveOneOut::new(model, 1.0, vec![2.0, 3.0]);
            for i in 0..2 {
                assert_eq!(
                    two.makespan_without(i).map(f64::to_bits),
                    loo.makespan_without(i).map(f64::to_bits),
                    "{model} i={i}"
                );
            }
            two.update_bid(1, 4.0);
            let fresh = ChainState::new(model, &params(1.0, &[2.0, 4.0]));
            assert_eq!(
                two.optimal_makespan().to_bits(),
                fresh.optimal_makespan().to_bits(),
                "{model}"
            );
        }
    }

    #[test]
    fn reload_matches_fresh_build() {
        let p = params(0.2, &[1.0, 2.0, 3.0, 4.0]);
        for model in ALL_MODELS {
            let mut chain = ChainState::new(model, &p);
            chain.update_bid(2, 9.0); // dirty it first
            let next = [2.0, 1.0, 4.0, 3.0];
            chain.reload(&next);
            let fresh = ChainState::new(model, &params(0.2, &next));
            let (mut a, mut b) = (Vec::new(), Vec::new());
            chain.fractions_into(&mut a);
            fresh.fractions_into(&mut b);
            assert_eq!(bits(&a), bits(&b), "{model}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn update_bid_rejects_bad_index() {
        let mut chain = ChainState::new(SystemModel::Cp, &params(0.2, &[1.0, 2.0]));
        chain.update_bid(2, 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid rate")]
    fn update_bid_rejects_bad_rate() {
        let mut chain = ChainState::new(SystemModel::Cp, &params(0.2, &[1.0, 2.0]));
        chain.update_bid(0, f64::NAN);
    }
}
