//! Diagnostics for allocations: optimality residuals, utilization, and
//! empirical checks of Theorems 2.1 and 2.2.

use crate::model::{finish_times, makespan, BusParams, SystemModel};
use crate::optimal;

/// Max−min spread of the finishing times under `alloc` — zero (up to
/// rounding) iff the allocation satisfies the Theorem 2.1 optimality
/// condition.
pub fn equal_finish_residual(model: SystemModel, params: &BusParams, alloc: &[f64]) -> f64 {
    let t = finish_times(model, params, alloc);
    let max = t.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = t.iter().cloned().fold(f64::INFINITY, f64::min);
    max - min
}

/// Mean processor utilization under `alloc`: computing time divided by
/// session makespan, averaged over processors. The optimal allocation
/// maximizes this for a fixed parameter set.
pub fn mean_utilization(model: SystemModel, params: &BusParams, alloc: &[f64]) -> f64 {
    let total = makespan(model, params, alloc);
    if total <= 0.0 {
        return 0.0;
    }
    let w = params.w();
    let busy: f64 = alloc.iter().zip(w).map(|(a, w)| a * w).sum();
    busy / (total * params.m() as f64)
}

/// Relative makespan excess of `alloc` over the optimal allocation:
/// `T(alloc)/T(α*) − 1 ≥ 0`.
pub fn suboptimality(model: SystemModel, params: &BusParams, alloc: &[f64]) -> f64 {
    makespan(model, params, alloc) / optimal::optimal_makespan(model, params) - 1.0
}

/// Empirical Theorem 2.2 check: relative spread of the optimal makespan
/// across the processor orders `perms` (each a permutation of `0..m`).
///
/// For the NCP models the originator position is pinned by the model, so
/// callers should keep the originator fixed in every permutation —
/// [`originator_fixed_perms`] generates suitable ones.
pub fn order_invariance_spread(
    model: SystemModel,
    params: &BusParams,
    perms: &[Vec<usize>],
) -> f64 {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for perm in perms {
        let t = optimal::optimal_makespan(model, &params.permuted(perm));
        lo = lo.min(t);
        hi = hi.max(t);
    }
    if lo == f64::INFINITY {
        return 0.0;
    }
    (hi - lo) / lo
}

/// All cyclic shifts of the processor order that keep the model's
/// originator in its defining position (all shifts for CP, which has an
/// external originator). A cheap, deterministic sample of the permutation
/// group for order-invariance checks.
pub fn originator_fixed_perms(model: SystemModel, m: usize) -> Vec<Vec<usize>> {
    let mut perms = Vec::new();
    match model.originator(m) {
        None => {
            for s in 0..m {
                perms.push((0..m).map(|i| (i + s) % m).collect());
            }
        }
        Some(orig) => {
            let others: Vec<usize> = (0..m).filter(|&i| i != orig).collect();
            let n = others.len().max(1);
            for s in 0..n {
                let mut p = Vec::with_capacity(m);
                let rotated: Vec<usize> =
                    (0..others.len()).map(|i| others[(i + s) % n]).collect();
                let mut it = rotated.into_iter();
                for i in 0..m {
                    if i == orig {
                        p.push(orig);
                    } else {
                        p.push(it.next().expect("length matches"));
                    }
                }
                perms.push(p);
            }
        }
    }
    perms
}

/// Speedup of the `m`-processor optimal schedule over the best single
/// processor running the whole load alone.
pub fn speedup(model: SystemModel, params: &BusParams) -> f64 {
    let solo = params
        .w()
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    solo / optimal::optimal_makespan(model, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ALL_MODELS;

    fn params() -> BusParams {
        BusParams::new(0.2, vec![1.0, 2.0, 3.0, 4.0]).unwrap()
    }

    #[test]
    fn optimal_has_zero_residual() {
        for model in ALL_MODELS {
            let a = optimal::fractions(model, &params());
            assert!(equal_finish_residual(model, &params(), &a) < 1e-12, "{model}");
        }
    }

    #[test]
    fn uniform_allocation_has_positive_residual() {
        let a = vec![0.25; 4];
        for model in ALL_MODELS {
            assert!(equal_finish_residual(model, &params(), &a) > 0.01, "{model}");
        }
    }

    #[test]
    fn suboptimality_nonnegative_and_zero_at_optimum() {
        for model in ALL_MODELS {
            let a = optimal::fractions(model, &params());
            assert!(suboptimality(model, &params(), &a).abs() < 1e-12, "{model}");
            let uniform = vec![0.25; 4];
            assert!(suboptimality(model, &params(), &uniform) > 0.0, "{model}");
        }
    }

    #[test]
    fn order_invariance_holds_at_optimum() {
        for model in ALL_MODELS {
            let perms = originator_fixed_perms(model, 4);
            assert!(perms.len() >= 3, "{model}");
            let spread = order_invariance_spread(model, &params(), &perms);
            assert!(spread < 1e-12, "{model}: spread {spread}");
        }
    }

    #[test]
    fn perms_are_permutations_and_fix_originator() {
        for model in ALL_MODELS {
            for perm in originator_fixed_perms(model, 5) {
                let mut sorted = perm.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, vec![0, 1, 2, 3, 4], "{model}");
                if let Some(orig) = model.originator(5) {
                    assert_eq!(perm[orig], orig, "{model}");
                }
            }
        }
    }

    #[test]
    fn utilization_bounded() {
        for model in ALL_MODELS {
            let a = optimal::fractions(model, &params());
            let u = mean_utilization(model, &params(), &a);
            assert!(u > 0.0 && u <= 1.0, "{model}: {u}");
        }
        assert_eq!(
            mean_utilization(SystemModel::Cp, &params(), &[0.0; 4]),
            0.0
        );
    }

    #[test]
    fn speedup_above_one_with_cheap_bus() {
        let p = BusParams::new(0.01, vec![1.0, 1.0, 1.0, 1.0]).unwrap();
        for model in ALL_MODELS {
            let s = speedup(model, &p);
            assert!(s > 2.0 && s <= 4.0, "{model}: {s}");
        }
    }

    #[test]
    fn speedup_collapses_with_expensive_bus() {
        // When z >> w, shipping load costs more than computing it locally;
        // the equal-finish optimum still beats one processor only barely.
        let p = BusParams::new(50.0, vec![1.0, 1.0]).unwrap();
        for model in ALL_MODELS {
            assert!(speedup(model, &p) < 1.1, "{model}");
        }
    }
}
