//! Multi-load installment scheduling on one shared bus — k loads per
//! session, per-load chain splices, pipelined distribution.
//!
//! The paper schedules exactly **one** divisible load per session. The
//! multi-load literature (Gallet/Robert/Vivien, *Scheduling multiple
//! divisible loads on a linear processor network*; Marchal/Rehn/Robert/
//! Vivien, *star platforms*) treats the regime a busy bus actually sees:
//! `k` loads contending for the same one-port bus, each with its own
//! volume and communication intensity. This module provides the two
//! pieces the auction layers build on:
//!
//! * [`InstallmentScheduler`] — `k` persistent [`ChainState`]s **sharing
//!   one rate vector**. Every load has its own bus intensity `z_ℓ` (time
//!   per unit of that load on the bus), so its telescoped link factors
//!   `k_j = w_j/(z_ℓ + w_{j+1})` differ per load even though the bids
//!   `w` are common. A bid update therefore costs one *suffix splice per
//!   load* ([`ChainState::update_bid`], O(m − i) with two divisions each)
//!   instead of `k` full from-scratch re-solves — the amortization the
//!   multi-load auction engine (`dls-mechanism`) and the
//!   `BENCH_multiload.json` harness measure.
//! * [`pipeline_schedule`] — the pipelined timeline: loads are
//!   distributed over the bus in order, and load `j+1`'s distribution
//!   overlaps load `j`'s computation. Within each load the allocation is
//!   the closed-form equal-finish optimum (Theorem 2.1, per-load); the
//!   *pipelined* k-load makespan has no closed form — it is the fixpoint
//!   of a max-recurrence over bus and processor availability — so the
//!   timeline is evaluated by the O(k·m) recurrence below, and
//!   [`pipeline_schedule_exact`] replays the identical recurrence over
//!   exact rationals (`dls_num::Rational`) as the certification /
//!   adjudication fallback.
//!
//! ## Timeline model
//!
//! All `k` loads are resident at the source (the control processor for
//! CP, the originator for the NCP models) at time 0; the bus is one-port
//! and serves loads in index order. Per model:
//!
//! * **CP** — the computeless control processor sends every fraction;
//!   workers compute as data arrives and their previous installment ends.
//! * **NCP-FE** — the originator `P_1` has a front end: it computes its
//!   own fractions back-to-back while transmitting everyone else's.
//! * **NCP-NFE** — the originator `P_m` has **no** front end: within a
//!   load it computes only after finishing that load's sends, and —
//!   because it is also the party driving the bus — the *next* load's
//!   distribution cannot start until its current computation is done.
//!   Pipelining still overlaps worker computation with communication,
//!   but the originator serializes, so NFE gains are structurally
//!   smaller than FE/CP gains (disclosed by the harness).
//!
//! ## Bit-exactness contract
//!
//! [`InstallmentScheduler::update_bid`] inherits [`ChainState`]'s
//! contract: each per-load chain is spliced with the same expressions in
//! the same order as a from-scratch rebuild, so every per-load quote is
//! **bit-identical** to `k` independent [`ChainState::new`] solves on
//! the final rates. The `multiload_differential` integration suite pins
//! this across models, head/tail update slots, and a misreport grid.
//!
//! This module is covered by the workspace no-panic lint gate: every
//! public entry point validates its inputs and reports
//! [`MultiLoadError`] instead of panicking.

use crate::chain::ChainState;
use crate::model::{BusParams, ParamError, SystemModel};
use crate::{exact, optimal};
use dls_num::Rational;
use std::fmt;

/// One divisible load in a multi-load session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadSpec {
    /// Load volume in units of the normalized single load (`> 0`). All
    /// per-load times scale linearly in the volume.
    pub size: f64,
    /// Bus intensity of this load: time to transmit one unit over the
    /// bus (`≥ 0`). Different load types (compute-bound vs data-bound)
    /// differ exactly here.
    pub z: f64,
}

impl LoadSpec {
    /// A unit-volume load with bus intensity `z`.
    pub fn unit(z: f64) -> Self {
        LoadSpec { size: 1.0, z }
    }

    /// A load of volume `size` with bus intensity `z`.
    pub fn new(size: f64, z: f64) -> Self {
        LoadSpec { size, z }
    }
}

/// Rejected multi-load input.
#[derive(Debug, Clone, PartialEq)]
pub enum MultiLoadError {
    /// The shared bid vector was not a valid market.
    Params(ParamError),
    /// A session must carry at least one load.
    NoLoads,
    /// A load with a non-finite/non-positive volume or invalid intensity.
    InvalidLoad {
        /// Offending load (0-based).
        load: usize,
        /// The offending volume.
        size: f64,
        /// The offending bus intensity.
        z: f64,
    },
    /// A processor index outside `0..m`.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of processors in the market.
        m: usize,
    },
    /// A load index outside `0..k`.
    LoadOutOfRange {
        /// The offending load index.
        load: usize,
        /// Number of loads in the session.
        k: usize,
    },
    /// A bid that is not finite and positive.
    InvalidBid {
        /// Offending processor (0-based).
        index: usize,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for MultiLoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MultiLoadError::Params(e) => write!(f, "{e}"),
            MultiLoadError::NoLoads => write!(f, "a multi-load session needs at least one load"),
            MultiLoadError::InvalidLoad { load, size, z } => write!(
                f,
                "load {load} (size {size}, z {z}) must have finite size > 0 and finite z >= 0"
            ),
            MultiLoadError::IndexOutOfRange { index, m } => {
                write!(f, "processor index {index} out of range for m = {m}")
            }
            MultiLoadError::LoadOutOfRange { load, k } => {
                write!(f, "load index {load} out of range for k = {k}")
            }
            MultiLoadError::InvalidBid { index, value } => {
                write!(f, "bid b[{index}] = {value} must be finite and > 0")
            }
        }
    }
}

impl std::error::Error for MultiLoadError {}

impl From<ParamError> for MultiLoadError {
    fn from(e: ParamError) -> Self {
        MultiLoadError::Params(e)
    }
}

fn check_load(load: usize, spec: &LoadSpec) -> Result<(), MultiLoadError> {
    let ok = spec.size.is_finite() && spec.size > 0.0 && spec.z.is_finite() && spec.z >= 0.0;
    if ok {
        Ok(())
    } else {
        Err(MultiLoadError::InvalidLoad {
            load,
            size: spec.size,
            z: spec.z,
        })
    }
}

/// `k` persistent per-load chain states over one shared rate vector.
///
/// See the [module docs](self): a bid update splices each load's chain
/// suffix (one [`ChainState::update_bid`] per load) instead of
/// re-solving `k` markets, and every per-load query is answered from the
/// cached products, bit-identical to a from-scratch solve.
#[derive(Debug, Clone)]
pub struct InstallmentScheduler {
    model: SystemModel,
    loads: Vec<LoadSpec>,
    /// One chain per load, all over the same `w` vector (differing only
    /// in the per-load `z`). Invariant: `chains` is non-empty and every
    /// chain agrees on `w`.
    chains: Vec<ChainState>,
}

impl InstallmentScheduler {
    /// Builds the per-load chains over a shared bid vector — O(k·m), the
    /// only unavoidable allocations.
    pub fn new(
        model: SystemModel,
        bids: &[f64],
        loads: &[LoadSpec],
    ) -> Result<Self, MultiLoadError> {
        if loads.is_empty() {
            return Err(MultiLoadError::NoLoads);
        }
        let mut chains = Vec::with_capacity(loads.len());
        for (index, spec) in loads.iter().enumerate() {
            check_load(index, spec)?;
            let params = BusParams::new(spec.z, bids.to_vec())?;
            chains.push(ChainState::new(model, &params));
        }
        Ok(InstallmentScheduler {
            model,
            loads: loads.to_vec(),
            chains,
        })
    }

    /// The system model.
    pub fn model(&self) -> SystemModel {
        self.model
    }

    /// Number of processors `m`.
    pub fn m(&self) -> usize {
        self.chains.first().map(ChainState::m).unwrap_or(0)
    }

    /// Number of loads `k`.
    pub fn k(&self) -> usize {
        self.loads.len()
    }

    /// The load specifications.
    pub fn loads(&self) -> &[LoadSpec] {
        &self.loads
    }

    /// The current shared bid vector.
    pub fn bids(&self) -> &[f64] {
        self.chains
            .first()
            .map(|c| c.params().w())
            .unwrap_or(&[])
    }

    fn check_bid(&self, index: usize, value: f64) -> Result<(), MultiLoadError> {
        let m = self.m();
        if index >= m {
            return Err(MultiLoadError::IndexOutOfRange { index, m });
        }
        if !value.is_finite() || value <= 0.0 {
            return Err(MultiLoadError::InvalidBid { index, value });
        }
        Ok(())
    }

    /// Replaces bid `i` across every load via the incremental chain
    /// splice — one O(m − i) [`ChainState::update_bid`] per load, `2k`
    /// divisions total. The hot path.
    pub fn update_bid(&mut self, i: usize, bid: f64) -> Result<(), MultiLoadError> {
        self.check_bid(i, bid)?;
        for chain in &mut self.chains {
            chain.update_bid(i, bid);
        }
        Ok(())
    }

    /// Replaces bid `i` across every load via `k` full from-scratch
    /// rebuilds of the cached chains (O(k·m), `k·m` divisions). Same
    /// observable behaviour as [`InstallmentScheduler::update_bid`],
    /// bit-for-bit; the reference path the differential suite and the
    /// benchmark pit the splice against.
    pub fn update_bid_rebuild(&mut self, i: usize, bid: f64) -> Result<(), MultiLoadError> {
        self.check_bid(i, bid)?;
        for chain in &mut self.chains {
            chain.update_bid_rebuild(i, bid);
        }
        Ok(())
    }

    /// The cached chain of one load (for read-only queries).
    pub fn chain(&self, load: usize) -> Result<&ChainState, MultiLoadError> {
        let k = self.k();
        self.chains
            .get(load)
            .ok_or(MultiLoadError::LoadOutOfRange { load, k })
    }

    /// Mutable access to one load's chain for payment-style queries
    /// ([`ChainState::makespan_without`] rebuilds its suffix sums lazily
    /// behind `&mut`). Mutating *bids* through this handle would break
    /// the shared-rate invariant — use
    /// [`InstallmentScheduler::update_bid`] for that.
    pub fn chain_mut(&mut self, load: usize) -> Result<&mut ChainState, MultiLoadError> {
        let k = self.k();
        self.chains
            .get_mut(load)
            .ok_or(MultiLoadError::LoadOutOfRange { load, k })
    }

    /// Writes load `load`'s optimal fractions `α(b)` into `out`
    /// (normalized; volume-independent). Bit-identical to
    /// [`crate::optimal::fractions`] on `(z_ℓ, w)`.
    pub fn fractions_into(&self, load: usize, out: &mut Vec<f64>) -> Result<(), MultiLoadError> {
        self.chain(load).map(|c| c.fractions_into(out))
    }

    /// Standalone optimal makespan of load `load` — the normalized
    /// single-load quote scaled by the load's volume. O(1) from the
    /// cached prefix sums.
    pub fn load_makespan(&self, load: usize) -> Result<f64, MultiLoadError> {
        let size = self
            .loads
            .get(load)
            .map(|s| s.size)
            .unwrap_or(f64::NAN);
        self.chain(load).map(|c| size * c.optimal_makespan())
    }

    /// Sum of the standalone per-load makespans: the makespan of running
    /// the loads strictly one after another with no overlap — the
    /// baseline [`pipeline_schedule`] is measured against.
    pub fn sequential_makespan(&self) -> f64 {
        self.loads
            .iter()
            .zip(&self.chains)
            .map(|(spec, chain)| spec.size * chain.optimal_makespan())
            .sum()
    }

    /// The pipelined timeline of all `k` loads under the current bids
    /// (see [`pipeline_schedule`]): load `j+1`'s distribution overlaps
    /// load `j`'s computation, subject to the one-port bus and the
    /// per-model originator constraints.
    pub fn schedule(&self) -> PipelineSchedule {
        let m = self.m();
        let mut alpha = Vec::with_capacity(m);
        let mut timeline = Timeline::new(self.model, self.bids().to_vec());
        for (spec, chain) in self.loads.iter().zip(&self.chains) {
            chain.fractions_into(&mut alpha);
            timeline.push_load(spec, &alpha);
        }
        timeline.finish(self.sequential_makespan())
    }
}

/// The realized pipelined timeline of a multi-load session.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineSchedule {
    /// Per-load completion time (the instant the load's last fraction
    /// finishes computing).
    pub load_finish: Vec<f64>,
    /// Completion time of the whole session: `max(load_finish)`.
    pub makespan: f64,
    /// The no-overlap baseline: sum of the standalone per-load optimal
    /// makespans.
    pub sequential_makespan: f64,
    /// Total time the bus spends transmitting (for utilization
    /// accounting; computation it overlaps is the pipelining gain).
    pub bus_busy: f64,
}

impl PipelineSchedule {
    /// Pipelining speedup over the strictly sequential baseline
    /// (`≥ 1` up to rounding whenever every load is served).
    pub fn speedup(&self) -> f64 {
        if self.makespan > 0.0 {
            self.sequential_makespan / self.makespan
        } else {
            1.0
        }
    }
}

/// The f64 pipelined-timeline recurrence, shared by
/// [`InstallmentScheduler::schedule`] and [`pipeline_schedule`].
struct Timeline {
    model: SystemModel,
    w: Vec<f64>,
    bus_free: f64,
    proc_free: Vec<f64>,
    bus_busy: f64,
    load_finish: Vec<f64>,
}

impl Timeline {
    fn new(model: SystemModel, w: Vec<f64>) -> Self {
        let m = w.len();
        Timeline {
            model,
            w,
            bus_free: 0.0,
            proc_free: vec![0.0; m],
            bus_busy: 0.0,
            load_finish: Vec::new(),
        }
    }

    /// One-port transfer of `volume` units to processor `i`, then its
    /// computation as soon as data and the processor are both free.
    /// Returns the compute end.
    fn send_and_compute(&mut self, i: usize, volume: f64, z: f64) -> f64 {
        let (w_i, free) = match (self.w.get(i), self.proc_free.get(i)) {
            (Some(&w_i), Some(&free)) => (w_i, free),
            _ => return self.bus_free,
        };
        let t_end = self.bus_free + volume * z;
        self.bus_busy += volume * z;
        self.bus_free = t_end;
        let c_end = t_end.max(free) + volume * w_i;
        if let Some(slot) = self.proc_free.get_mut(i) {
            *slot = c_end;
        }
        c_end
    }

    /// Local computation of `volume` units on processor `i` starting as
    /// soon as `ready` and the processor allow. Returns the compute end.
    fn compute(&mut self, i: usize, volume: f64, ready: f64) -> f64 {
        let (w_i, free) = match (self.w.get(i), self.proc_free.get(i)) {
            (Some(&w_i), Some(&free)) => (w_i, free),
            _ => return ready,
        };
        let c_end = ready.max(free) + volume * w_i;
        if let Some(slot) = self.proc_free.get_mut(i) {
            *slot = c_end;
        }
        c_end
    }

    fn push_load(&mut self, spec: &LoadSpec, alpha: &[f64]) {
        let m = self.w.len();
        let s = spec.size;
        let z = spec.z;
        let mut finish = f64::NEG_INFINITY;
        match self.model {
            SystemModel::Cp => {
                for (i, &a) in alpha.iter().enumerate().take(m) {
                    finish = finish.max(self.send_and_compute(i, s * a, z));
                }
            }
            SystemModel::NcpFe => {
                // Front-end originator: computes its own fraction from
                // local data (no bus), overlapping its sends.
                finish = finish.max(self.compute(0, s * alpha.first().copied().unwrap_or(0.0), 0.0));
                for (i, &a) in alpha.iter().enumerate().take(m).skip(1) {
                    finish = finish.max(self.send_and_compute(i, s * a, z));
                }
            }
            SystemModel::NcpNfe => {
                let o = m.saturating_sub(1);
                // No front end: the originator drives the bus, so the
                // next load's sends wait for its current computation...
                self.bus_free = self.bus_free.max(self.proc_free.get(o).copied().unwrap_or(0.0));
                for (i, &a) in alpha.iter().enumerate().take(o) {
                    finish = finish.max(self.send_and_compute(i, s * a, z));
                }
                // ...and its own fraction computes only after this
                // load's sends are done (Eq. 3, per load).
                let a_o = alpha.get(o).copied().unwrap_or(0.0);
                finish = finish.max(self.compute(o, s * a_o, self.bus_free));
            }
        }
        self.load_finish.push(finish);
    }

    fn finish(self, sequential_makespan: f64) -> PipelineSchedule {
        let makespan = self
            .load_finish
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
            .max(0.0);
        PipelineSchedule {
            load_finish: self.load_finish,
            makespan,
            sequential_makespan,
            bus_busy: self.bus_busy,
        }
    }
}

/// Pipelined timeline of `loads` on the shared bus under bid vector
/// `bids`, each load allocated by its closed-form equal-finish optimum.
/// Convenience over [`InstallmentScheduler::schedule`] for one-shot use.
pub fn pipeline_schedule(
    model: SystemModel,
    bids: &[f64],
    loads: &[LoadSpec],
) -> Result<PipelineSchedule, MultiLoadError> {
    InstallmentScheduler::new(model, bids, loads).map(|s| s.schedule())
}

/// Exact-rational pipelined timeline: re-derives every per-load
/// allocation with the exact solver ([`crate::exact::fractions`]) and
/// replays the same recurrence as [`pipeline_schedule`] over
/// [`Rational`] — zero rounding anywhere. This is the fallback /
/// certification path: the pipelined k-load makespan has no closed
/// form, so exactness claims (and disputes between processors about a
/// shared timeline) are settled here rather than in floating point.
///
/// Inputs convert from f64 losslessly; returns `(per-load finish,
/// makespan, sequential baseline)`.
pub fn pipeline_schedule_exact(
    model: SystemModel,
    bids: &[f64],
    loads: &[LoadSpec],
) -> Result<ExactPipeline, MultiLoadError> {
    if loads.is_empty() {
        return Err(MultiLoadError::NoLoads);
    }
    for (index, spec) in loads.iter().enumerate() {
        check_load(index, spec)?;
    }
    // Validate the shared bid vector once through the f64 twin; after
    // that, every input is finite and from_f64 is lossless.
    let _ = BusParams::new(0.0, bids.to_vec())?;
    let rat = |x: f64| Rational::from_f64(x).ok();
    let m = bids.len();
    let mut w: Vec<Rational> = Vec::with_capacity(m);
    for (index, &x) in bids.iter().enumerate() {
        match rat(x) {
            Some(r) => w.push(r),
            None => {
                return Err(MultiLoadError::Params(ParamError::InvalidRate {
                    index,
                    value: x,
                }))
            }
        }
    }
    let zero = Rational::zero();
    let mut bus_free = zero.clone();
    let mut proc_free = vec![zero.clone(); m];
    let mut load_finish = Vec::with_capacity(loads.len());
    let mut sequential = zero.clone();
    for (index, spec) in loads.iter().enumerate() {
        let (s, z) = match (rat(spec.size), rat(spec.z)) {
            (Some(s), Some(z)) => (s, z),
            _ => {
                return Err(MultiLoadError::InvalidLoad {
                    load: index,
                    size: spec.size,
                    z: spec.z,
                })
            }
        };
        let params = exact::ExactParams::new(z.clone(), w.clone());
        let alpha = exact::fractions(model, &params);
        sequential = &sequential + &(&s * &exact::optimal_makespan(model, &params));
        let mut finish: Option<Rational> = None;
        let raise = |cand: Rational, finish: &mut Option<Rational>| {
            let better = finish.as_ref().map(|f| &cand > f).unwrap_or(true);
            if better {
                *finish = Some(cand);
            }
        };
        let send_and_compute =
            |i: usize,
             vol: &Rational,
             bus_free: &mut Rational,
             proc_free: &mut [Rational]|
             -> Option<Rational> {
                let w_i = w.get(i)?;
                let t_end = &*bus_free + &(vol * &z);
                *bus_free = t_end.clone();
                let free = proc_free.get(i)?;
                let start = if &t_end > free { t_end } else { free.clone() };
                let c_end = &start + &(vol * w_i);
                *proc_free.get_mut(i)? = c_end.clone();
                Some(c_end)
            };
        match model {
            SystemModel::Cp => {
                for (i, a) in alpha.iter().enumerate() {
                    let vol = &s * a;
                    if let Some(c) = send_and_compute(i, &vol, &mut bus_free, &mut proc_free) {
                        raise(c, &mut finish);
                    }
                }
            }
            SystemModel::NcpFe => {
                if let (Some(a0), Some(w0), Some(free)) =
                    (alpha.first(), w.first(), proc_free.first())
                {
                    let c_end = free + &(&(&s * a0) * w0);
                    raise(c_end.clone(), &mut finish);
                    if let Some(slot) = proc_free.get_mut(0) {
                        *slot = c_end;
                    }
                }
                for (i, a) in alpha.iter().enumerate().skip(1) {
                    let vol = &s * a;
                    if let Some(c) = send_and_compute(i, &vol, &mut bus_free, &mut proc_free) {
                        raise(c, &mut finish);
                    }
                }
            }
            SystemModel::NcpNfe => {
                let o = m.saturating_sub(1);
                if let Some(free) = proc_free.get(o) {
                    if free > &bus_free {
                        bus_free = free.clone();
                    }
                }
                for (i, a) in alpha.iter().enumerate().take(o) {
                    let vol = &s * a;
                    if let Some(c) = send_and_compute(i, &vol, &mut bus_free, &mut proc_free) {
                        raise(c, &mut finish);
                    }
                }
                if let (Some(a_o), Some(w_o), Some(free)) =
                    (alpha.get(o), w.get(o), proc_free.get(o))
                {
                    let start = if &bus_free > free {
                        bus_free.clone()
                    } else {
                        free.clone()
                    };
                    let c_end = &start + &(&(&s * a_o) * w_o);
                    raise(c_end.clone(), &mut finish);
                    if let Some(slot) = proc_free.get_mut(o) {
                        *slot = c_end;
                    }
                }
            }
        }
        load_finish.push(finish.unwrap_or_else(Rational::zero));
    }
    let makespan = load_finish
        .iter()
        .fold(Rational::zero(), |acc, x| if x > &acc { x.clone() } else { acc });
    Ok(ExactPipeline {
        load_finish,
        makespan,
        sequential_makespan: sequential,
    })
}

/// Result of [`pipeline_schedule_exact`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactPipeline {
    /// Per-load completion times.
    pub load_finish: Vec<Rational>,
    /// Session completion time.
    pub makespan: Rational,
    /// Sum of the standalone per-load optimal makespans.
    pub sequential_makespan: Rational,
}

/// Standalone optimal makespan of one load from scratch — the
/// k-independent-solves reference the scheduler's cached quotes are
/// differential-tested against (allocation-free given a scratch buffer).
pub fn independent_load_makespan(
    model: SystemModel,
    params: &BusParams,
    spec: &LoadSpec,
    scratch: &mut Vec<f64>,
) -> f64 {
    optimal::fractions_into(model, params, scratch);
    spec.size * crate::model::makespan(model, params, scratch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ALL_MODELS;

    fn bids() -> Vec<f64> {
        vec![1.0, 2.5, 0.8, 3.2, 1.7]
    }

    fn loads() -> Vec<LoadSpec> {
        vec![
            LoadSpec::new(1.0, 0.25),
            LoadSpec::new(0.5, 0.125),
            LoadSpec::new(2.0, 0.5),
        ]
    }

    fn bits(xs: &[f64]) -> Vec<u64> {
        xs.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn per_load_quotes_match_independent_chains_bitwise() {
        for model in ALL_MODELS {
            let sched = InstallmentScheduler::new(model, &bids(), &loads()).unwrap();
            for (l, spec) in loads().iter().enumerate() {
                let p = BusParams::new(spec.z, bids()).unwrap();
                let fresh = ChainState::new(model, &p);
                let (mut a, mut b) = (Vec::new(), Vec::new());
                sched.fractions_into(l, &mut a).unwrap();
                fresh.fractions_into(&mut b);
                assert_eq!(bits(&a), bits(&b), "{model} load {l}");
                assert_eq!(
                    sched.load_makespan(l).unwrap().to_bits(),
                    (spec.size * fresh.optimal_makespan()).to_bits(),
                    "{model} load {l}"
                );
            }
        }
    }

    #[test]
    fn splice_and_rebuild_agree_bitwise_across_updates() {
        for model in ALL_MODELS {
            let mut inc = InstallmentScheduler::new(model, &bids(), &loads()).unwrap();
            let mut full = InstallmentScheduler::new(model, &bids(), &loads()).unwrap();
            let updates = [(3usize, 0.9), (0, 2.2), (4, 1.1), (2, 6.5), (4, 0.3)];
            for &(i, b) in &updates {
                inc.update_bid(i, b).unwrap();
                full.update_bid_rebuild(i, b).unwrap();
                for l in 0..inc.k() {
                    assert_eq!(
                        inc.load_makespan(l).unwrap().to_bits(),
                        full.load_makespan(l).unwrap().to_bits(),
                        "{model} load {l} after update {i}"
                    );
                    let (mut a, mut b) = (Vec::new(), Vec::new());
                    inc.fractions_into(l, &mut a).unwrap();
                    full.fractions_into(l, &mut b).unwrap();
                    assert_eq!(bits(&a), bits(&b), "{model} load {l} after update {i}");
                }
            }
        }
    }

    #[test]
    fn single_load_pipeline_matches_standalone_makespan() {
        for model in ALL_MODELS {
            let one = [LoadSpec::unit(0.25)];
            let sched = InstallmentScheduler::new(model, &bids(), &one).unwrap();
            let timeline = sched.schedule();
            let standalone = sched.load_makespan(0).unwrap();
            assert!(
                (timeline.makespan - standalone).abs() < 1e-12,
                "{model}: {} vs {standalone}",
                timeline.makespan
            );
        }
    }

    #[test]
    fn pipeline_beats_sequential_and_never_reorders_loads() {
        for model in ALL_MODELS {
            let sched = InstallmentScheduler::new(model, &bids(), &loads()).unwrap();
            let t = sched.schedule();
            assert!(
                t.makespan <= t.sequential_makespan + 1e-12,
                "{model}: pipelined {} > sequential {}",
                t.makespan,
                t.sequential_makespan
            );
            // Loads are served in order: finishes are non-decreasing in
            // every model where the originator serializes, and the last
            // load always finishes last overall.
            assert_eq!(t.load_finish.len(), 3, "{model}");
            assert!(
                (t.makespan - t.load_finish.iter().cloned().fold(f64::MIN, f64::max)).abs()
                    < 1e-15,
                "{model}"
            );
            assert!(t.speedup() >= 1.0 - 1e-12, "{model}");
        }
    }

    #[test]
    fn exact_pipeline_certifies_f64_recurrence() {
        // Dyadic inputs convert exactly; the f64 recurrence must agree
        // with the zero-rounding rational replay to fp tolerance.
        let bids = vec![1.5, 2.25, 0.75, 3.0];
        let loads = vec![LoadSpec::new(1.0, 0.375), LoadSpec::new(0.5, 0.25)];
        for model in ALL_MODELS {
            let fp = pipeline_schedule(model, &bids, &loads).unwrap();
            let ex = pipeline_schedule_exact(model, &bids, &loads).unwrap();
            assert!(
                (fp.makespan - ex.makespan.to_f64()).abs() < 1e-12,
                "{model}: {} vs {}",
                fp.makespan,
                ex.makespan.to_f64()
            );
            assert!(
                (fp.sequential_makespan - ex.sequential_makespan.to_f64()).abs() < 1e-12,
                "{model}"
            );
            for (f, e) in fp.load_finish.iter().zip(&ex.load_finish) {
                assert!((f - e.to_f64()).abs() < 1e-12, "{model}");
            }
        }
    }

    #[test]
    fn nfe_originator_serializes_the_bus() {
        // On NCP-NFE the originator drives the bus without a front end,
        // so pipelining gains are smaller than on NCP-FE for the same
        // rates and loads.
        let many: Vec<LoadSpec> = (0..6).map(|_| LoadSpec::unit(0.4)).collect();
        let fe = pipeline_schedule(SystemModel::NcpFe, &bids(), &many).unwrap();
        let nfe = pipeline_schedule(SystemModel::NcpNfe, &bids(), &many).unwrap();
        assert!(
            fe.speedup() >= nfe.speedup(),
            "FE speedup {} < NFE speedup {}",
            fe.speedup(),
            nfe.speedup()
        );
    }

    #[test]
    fn typed_errors_cover_bad_inputs() {
        assert!(matches!(
            InstallmentScheduler::new(SystemModel::Cp, &bids(), &[]),
            Err(MultiLoadError::NoLoads)
        ));
        assert!(matches!(
            InstallmentScheduler::new(SystemModel::Cp, &bids(), &[LoadSpec::new(-1.0, 0.2)]),
            Err(MultiLoadError::InvalidLoad { load: 0, .. })
        ));
        assert!(matches!(
            InstallmentScheduler::new(SystemModel::Cp, &[], &[LoadSpec::unit(0.2)]),
            Err(MultiLoadError::Params(_))
        ));
        let mut s =
            InstallmentScheduler::new(SystemModel::Cp, &bids(), &[LoadSpec::unit(0.2)]).unwrap();
        assert!(matches!(
            s.update_bid(9, 1.0),
            Err(MultiLoadError::IndexOutOfRange { index: 9, m: 5 })
        ));
        assert!(matches!(
            s.update_bid(0, f64::NAN),
            Err(MultiLoadError::InvalidBid { index: 0, .. })
        ));
        assert!(matches!(
            s.load_makespan(7),
            Err(MultiLoadError::LoadOutOfRange { load: 7, k: 1 })
        ));
        // A failed update leaves the scheduler usable.
        assert!(s.update_bid(1, 3.0).is_ok());
        assert_eq!(s.bids().get(1).copied(), Some(3.0));
    }

    #[test]
    fn bus_busy_accounts_every_transfer() {
        // CP transmits everything: bus_busy = Σ_ℓ s_ℓ·z_ℓ (α sums to 1).
        let sched = InstallmentScheduler::new(SystemModel::Cp, &bids(), &loads()).unwrap();
        let t = sched.schedule();
        let expect: f64 = loads().iter().map(|l| l.size * l.z).sum();
        assert!((t.bus_busy - expect).abs() < 1e-12);
    }
}
