//! Linear (daisy-chain) network extension — the paper's stated future work
//! ("for future work, we are planning to investigate other network
//! architectures", §6).
//!
//! Topology: `P_1 − P_2 − … − P_m`, the load originating at the boundary
//! processor `P_1`. Link `i` (connecting `P_i` to `P_{i+1}`) moves one unit
//! of load in time `z_i`. Processors have front ends and use store-and-
//! forward: `P_i` keeps its own fraction and simultaneously forwards the
//! remaining tail `Σ_{j>i} α_j` down the chain while it computes.
//!
//! Equal-finish optimality (the linear-network analogue of Theorem 2.1)
//! gives the backward recursion
//!
//! ```text
//! α_i·w_i = z_i·Σ_{j>i} α_j + α_{i+1}·w_{i+1},   i = 1…m−1
//! ```
//!
//! solved in O(m) by accumulating the tail sum from the far end.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Parameters of a linear daisy-chain network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearParams {
    /// Per-link communication rates; `links[i]` connects `P_{i+1}` to
    /// `P_{i+2}` (0-based: link i is between processors i and i+1).
    /// Length `m − 1`.
    links: Vec<f64>,
    /// Per-processor computing rates, length `m`.
    w: Vec<f64>,
}

/// Invalid [`LinearParams`].
#[derive(Debug, Clone, PartialEq)]
pub enum LinearParamError {
    /// No processors.
    NoProcessors,
    /// `links.len() != w.len() - 1`.
    LinkCountMismatch {
        /// Provided links.
        links: usize,
        /// Provided processors.
        processors: usize,
    },
    /// A rate was non-finite or out of range.
    InvalidRate {
        /// Description of the offending parameter.
        what: &'static str,
        /// Index.
        index: usize,
    },
}

impl fmt::Display for LinearParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinearParamError::NoProcessors => write!(f, "at least one processor required"),
            LinearParamError::LinkCountMismatch { links, processors } => write!(
                f,
                "{links} links cannot connect {processors} processors (need m-1)"
            ),
            LinearParamError::InvalidRate { what, index } => {
                write!(f, "invalid {what} at index {index}")
            }
        }
    }
}

impl std::error::Error for LinearParamError {}

impl LinearParams {
    /// Validated constructor. Links may be `0` (free links); processor
    /// rates must be strictly positive.
    pub fn new(links: Vec<f64>, w: Vec<f64>) -> Result<Self, LinearParamError> {
        if w.is_empty() {
            return Err(LinearParamError::NoProcessors);
        }
        if links.len() + 1 != w.len() {
            return Err(LinearParamError::LinkCountMismatch {
                links: links.len(),
                processors: w.len(),
            });
        }
        for (index, &z) in links.iter().enumerate() {
            if !z.is_finite() || z < 0.0 {
                return Err(LinearParamError::InvalidRate { what: "link rate", index });
            }
        }
        for (index, &x) in w.iter().enumerate() {
            if !x.is_finite() || x <= 0.0 {
                return Err(LinearParamError::InvalidRate {
                    what: "processing rate",
                    index,
                });
            }
        }
        Ok(LinearParams { links, w })
    }

    /// Uniform-link convenience constructor.
    pub fn uniform_links(z: f64, w: Vec<f64>) -> Result<Self, LinearParamError> {
        let links = vec![z; w.len().saturating_sub(1)];
        LinearParams::new(links, w)
    }

    /// Number of processors.
    pub fn m(&self) -> usize {
        self.w.len()
    }

    /// Per-link rates.
    pub fn links(&self) -> &[f64] {
        &self.links
    }

    /// Per-processor rates.
    pub fn w(&self) -> &[f64] {
        &self.w
    }
}

/// Optimal equal-finish fractions for the chain.
pub fn fractions(params: &LinearParams) -> Vec<f64> {
    let m = params.m();
    if m == 1 {
        return vec![1.0];
    }
    let w = params.w();
    let z = params.links();
    // Unnormalized backward pass: set α_m = 1, then
    // α_i = (z_i · tail + α_{i+1} w_{i+1}) / w_i, tail = Σ_{j>i} α_j.
    let mut alpha = vec![0.0; m];
    alpha[m - 1] = 1.0;
    let mut tail = 1.0;
    for i in (0..m - 1).rev() {
        alpha[i] = (z[i] * tail + alpha[i + 1] * w[i + 1]) / w[i];
        tail += alpha[i];
    }
    let total: f64 = alpha.iter().sum();
    for a in &mut alpha {
        *a /= total;
    }
    alpha
}

/// Arrival times `t_i` (when `P_i` has fully received its data) and finish
/// times `T_i = t_i + α_i·w_i` for an arbitrary allocation.
///
/// # Panics
/// Panics if `alloc.len() != params.m()`.
pub fn finish_times(params: &LinearParams, alloc: &[f64]) -> Vec<f64> {
    let m = params.m();
    assert_eq!(alloc.len(), m, "allocation length mismatch");
    let w = params.w();
    let z = params.links();
    let mut times = Vec::with_capacity(m);
    let mut arrival = 0.0;
    let mut tail: f64 = alloc.iter().sum();
    for i in 0..m {
        times.push(arrival + alloc[i] * w[i]);
        tail -= alloc[i];
        if i < m - 1 {
            // Forwarding the remaining tail down link i takes z_i·tail.
            arrival += z[i] * tail;
        }
    }
    times
}

/// Optimal makespan of the chain.
pub fn optimal_makespan(params: &LinearParams) -> f64 {
    let alpha = fractions(params);
    finish_times(params, &alpha)
        .into_iter()
        .fold(f64::NEG_INFINITY, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LinearParams {
        LinearParams::new(vec![0.2, 0.3, 0.1], vec![1.0, 2.0, 1.5, 3.0]).unwrap()
    }

    #[test]
    fn validation() {
        assert!(matches!(
            LinearParams::new(vec![], vec![]),
            Err(LinearParamError::NoProcessors)
        ));
        assert!(matches!(
            LinearParams::new(vec![0.1], vec![1.0, 2.0, 3.0]),
            Err(LinearParamError::LinkCountMismatch { .. })
        ));
        assert!(matches!(
            LinearParams::new(vec![-0.1], vec![1.0, 2.0]),
            Err(LinearParamError::InvalidRate { what: "link rate", .. })
        ));
        assert!(matches!(
            LinearParams::new(vec![0.1], vec![1.0, 0.0]),
            Err(LinearParamError::InvalidRate { what: "processing rate", .. })
        ));
        assert!(LinearParams::new(vec![], vec![2.0]).is_ok());
    }

    #[test]
    fn fractions_sum_to_one_and_positive() {
        let a = fractions(&sample());
        assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(a.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn equal_finish_at_optimum() {
        let p = sample();
        let a = fractions(&p);
        let t = finish_times(&p, &a);
        for x in &t {
            assert!((x - t[0]).abs() < 1e-12, "{t:?}");
        }
    }

    #[test]
    fn two_processor_hand_solved() {
        // α_1 w_1 = z α_2 + α_2 w_2 with z=1, w=(2,3):
        // 2 α_1 = 4 α_2 → α = (2/3, 1/3); T = 2·2/3 = 4/3.
        let p = LinearParams::new(vec![1.0], vec![2.0, 3.0]).unwrap();
        let a = fractions(&p);
        assert!((a[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((a[1] - 1.0 / 3.0).abs() < 1e-12);
        assert!((optimal_makespan(&p) - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn chain_with_two_nodes_equals_ncp_fe_bus() {
        // With m = 2 the chain and the NCP-FE bus are the same machine:
        // one originator computing immediately, one link to the peer.
        let p_lin = LinearParams::new(vec![0.4], vec![1.0, 2.5]).unwrap();
        let p_bus = crate::BusParams::new(0.4, vec![1.0, 2.5]).unwrap();
        let a_lin = fractions(&p_lin);
        let a_bus = crate::optimal::fractions(crate::SystemModel::NcpFe, &p_bus);
        for (x, y) in a_lin.iter().zip(&a_bus) {
            assert!((x - y).abs() < 1e-12);
        }
        assert!(
            (optimal_makespan(&p_lin)
                - crate::optimal::optimal_makespan(crate::SystemModel::NcpFe, &p_bus))
            .abs()
                < 1e-12
        );
    }

    #[test]
    fn free_links_balance_by_speed() {
        // z = 0 everywhere: α_i ∝ 1/w_i like a free bus.
        let p = LinearParams::uniform_links(0.0, vec![1.0, 2.0, 4.0]).unwrap();
        let a = fractions(&p);
        assert!((a[0] - 4.0 / 7.0).abs() < 1e-12);
        assert!((a[1] - 2.0 / 7.0).abs() < 1e-12);
        assert!((a[2] - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn deep_chain_pays_more_than_bus() {
        // Same rates: a chain forwards the tail across EVERY hop, so with
        // equal per-hop and bus rates the chain's optimal makespan is no
        // better than the NCP-FE bus.
        let w = vec![1.0, 1.5, 2.0, 2.5, 3.0];
        let chain = LinearParams::uniform_links(0.25, w.clone()).unwrap();
        let bus = crate::BusParams::new(0.25, w).unwrap();
        let t_chain = optimal_makespan(&chain);
        let t_bus = crate::optimal::optimal_makespan(crate::SystemModel::NcpFe, &bus);
        assert!(t_chain >= t_bus - 1e-12, "{t_chain} vs {t_bus}");
    }

    #[test]
    fn single_processor() {
        let p = LinearParams::new(vec![], vec![2.0]).unwrap();
        assert_eq!(fractions(&p), vec![1.0]);
        assert_eq!(optimal_makespan(&p), 2.0);
    }

    #[test]
    fn uniform_allocation_suboptimal() {
        let p = sample();
        let uniform = vec![0.25; 4];
        let t_uniform = finish_times(&p, &uniform)
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(t_uniform > optimal_makespan(&p));
    }
}
