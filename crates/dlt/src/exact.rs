//! Exact-rational DLT solvers.
//!
//! Mirrors [`crate::optimal`] over [`Rational`] so optimality properties can
//! be asserted with **zero tolerance**: the fractions sum to exactly 1 and
//! the finishing times are exactly equal. Tests use this to certify the
//! floating-point solver.

use crate::model::SystemModel;
use dls_num::Rational;

/// Exact bus parameters (see [`crate::BusParams`] for the f64 twin).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactParams {
    /// Communication rate (time per unit load on the bus), `>= 0`.
    pub z: Rational,
    /// Processing rates, each `> 0`.
    pub w: Vec<Rational>,
}

impl ExactParams {
    /// Validated constructor.
    ///
    /// # Panics
    /// Panics on empty `w`, negative `z`, or non-positive rates — exact
    /// parameters are built programmatically in tests, where a panic is the
    /// right failure mode.
    pub fn new(z: Rational, w: Vec<Rational>) -> Self {
        assert!(!w.is_empty(), "at least one processor required");
        assert!(!z.is_negative(), "negative communication rate");
        assert!(w.iter().all(|r| r.is_positive()), "non-positive rate");
        ExactParams { z, w }
    }

    /// Exact parameters from f64 values (each f64 converts exactly).
    ///
    /// # Panics
    /// Panics if any value is NaN/infinite or violates the sign constraints.
    // dls-lint: allow(no-float-in-exact) -- conversion boundary: floats enter the exact domain here, losslessly
    pub fn from_f64(z: f64, w: &[f64]) -> Self {
        ExactParams::new(
            Rational::from_f64(z).expect("finite z"),
            w.iter()
                .map(|&x| Rational::from_f64(x).expect("finite w"))
                .collect(),
        )
    }

    /// Number of processors.
    pub fn m(&self) -> usize {
        self.w.len()
    }
}

/// Exact optimal fractions (Algorithms 2.1/2.2 over rationals).
pub fn fractions(model: SystemModel, params: &ExactParams) -> Vec<Rational> {
    let m = params.m();
    if m == 1 {
        return vec![Rational::one()];
    }
    let mut u = Vec::with_capacity(m);
    u.push(Rational::one());
    match model {
        SystemModel::Cp | SystemModel::NcpFe => {
            for i in 0..m - 1 {
                let k = &params.w[i] / &(&params.z + &params.w[i + 1]);
                let next = &u[i] * &k;
                u.push(next);
            }
        }
        SystemModel::NcpNfe => {
            for i in 0..m - 2 {
                let k = &params.w[i] / &(&params.z + &params.w[i + 1]);
                let next = &u[i] * &k;
                u.push(next);
            }
            let last = &u[m - 2] * &(&params.w[m - 2] / &params.w[m - 1]);
            u.push(last);
        }
    }
    let total = u
        .iter()
        .fold(Rational::zero(), |acc, x| &acc + x);
    u.into_iter().map(|x| &x / &total).collect()
}

/// Exact finishing times for an arbitrary allocation (Eqs. 1–3, with the
/// figure-accurate NCP-FE reading — see [`crate::finish_times`]).
///
/// # Panics
/// Panics if `alloc.len() != params.m()`.
pub fn finish_times(
    model: SystemModel,
    params: &ExactParams,
    alloc: &[Rational],
) -> Vec<Rational> {
    let m = params.m();
    assert_eq!(alloc.len(), m, "allocation length mismatch");
    let z = &params.z;
    let w = &params.w;
    let mut times = Vec::with_capacity(m);
    match model {
        SystemModel::Cp => {
            let mut prefix = Rational::zero();
            for i in 0..m {
                prefix = &prefix + &alloc[i];
                times.push(&(z * &prefix) + &(&alloc[i] * &w[i]));
            }
        }
        SystemModel::NcpFe => {
            times.push(&alloc[0] * &w[0]);
            let mut prefix = Rational::zero();
            for i in 1..m {
                prefix = &prefix + &alloc[i];
                times.push(&(z * &prefix) + &(&alloc[i] * &w[i]));
            }
        }
        SystemModel::NcpNfe => {
            let mut prefix = Rational::zero();
            for i in 0..m - 1 {
                prefix = &prefix + &alloc[i];
                times.push(&(z * &prefix) + &(&alloc[i] * &w[i]));
            }
            times.push(&(z * &prefix) + &(&alloc[m - 1] * &w[m - 1]));
        }
    }
    times
}

/// Exact optimal makespan.
pub fn optimal_makespan(model: SystemModel, params: &ExactParams) -> Rational {
    let alpha = fractions(model, params);
    finish_times(model, params, &alpha)
        .into_iter()
        .max()
        .expect("at least one processor")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ALL_MODELS;
    use crate::optimal;
    use crate::BusParams;

    fn rat(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    fn sample() -> ExactParams {
        ExactParams::new(rat(1, 4), vec![rat(1, 1), rat(2, 1), rat(3, 1), rat(5, 2)])
    }

    #[test]
    fn fractions_sum_exactly_one() {
        let p = sample();
        for model in ALL_MODELS {
            let a = fractions(model, &p);
            let sum = a.iter().fold(Rational::zero(), |acc, x| &acc + x);
            assert_eq!(sum, Rational::one(), "{model}");
        }
    }

    #[test]
    fn finish_times_exactly_equal() {
        let p = sample();
        for model in ALL_MODELS {
            let a = fractions(model, &p);
            let t = finish_times(model, &p, &a);
            for time in &t {
                assert_eq!(time, &t[0], "{model}");
            }
        }
    }

    #[test]
    fn ncp_fe_known_exact_solution() {
        // z=1, w=(2,3): α = (2/3, 1/3), makespan 4/3.
        let p = ExactParams::new(rat(1, 1), vec![rat(2, 1), rat(3, 1)]);
        let a = fractions(SystemModel::NcpFe, &p);
        assert_eq!(a, vec![rat(2, 3), rat(1, 3)]);
        assert_eq!(optimal_makespan(SystemModel::NcpFe, &p), rat(4, 3));
    }

    #[test]
    fn ncp_nfe_known_exact_solution() {
        // z=1, w=(2,3): α = (3/5, 2/5), makespan 9/5.
        let p = ExactParams::new(rat(1, 1), vec![rat(2, 1), rat(3, 1)]);
        let a = fractions(SystemModel::NcpNfe, &p);
        assert_eq!(a, vec![rat(3, 5), rat(2, 5)]);
        assert_eq!(optimal_makespan(SystemModel::NcpNfe, &p), rat(9, 5));
    }

    #[test]
    fn cp_three_processor_exact() {
        // z=1, w=(1,1,1): k=1/2 → u=(1,1/2,1/4), α=(4/7,2/7,1/7).
        let p = ExactParams::new(rat(1, 1), vec![rat(1, 1); 3]);
        let a = fractions(SystemModel::Cp, &p);
        assert_eq!(a, vec![rat(4, 7), rat(2, 7), rat(1, 7)]);
        // T_1 = z·4/7 + 4/7 = 8/7.
        assert_eq!(optimal_makespan(SystemModel::Cp, &p), rat(8, 7));
    }

    #[test]
    fn f64_solver_certified_by_exact() {
        let z = 0.375; // exactly representable
        let w = [1.5, 2.25, 0.75, 3.0, 1.125];
        let fp = BusParams::new(z, w.to_vec()).unwrap();
        let ep = ExactParams::from_f64(z, &w);
        for model in ALL_MODELS {
            let af = optimal::fractions(model, &fp);
            let ae = fractions(model, &ep);
            for (f, e) in af.iter().zip(&ae) {
                assert!(
                    (f - e.to_f64()).abs() < 1e-14,
                    "{model}: {f} vs {}",
                    e.to_f64()
                );
            }
            let mf = optimal::optimal_makespan(model, &fp);
            let me = optimal_makespan(model, &ep);
            assert!((mf - me.to_f64()).abs() < 1e-14, "{model}");
        }
    }

    #[test]
    fn single_processor() {
        let p = ExactParams::new(rat(1, 2), vec![rat(3, 1)]);
        for model in ALL_MODELS {
            assert_eq!(fractions(model, &p), vec![Rational::one()], "{model}");
        }
        assert_eq!(optimal_makespan(SystemModel::Cp, &p), rat(7, 2));
        assert_eq!(optimal_makespan(SystemModel::NcpNfe, &p), rat(3, 1));
    }

    #[test]
    #[should_panic(expected = "non-positive rate")]
    fn rejects_zero_rate() {
        let _ = ExactParams::new(rat(1, 2), vec![Rational::zero()]);
    }
}
