//! System models and finishing-time equations (Eqs. 1–3).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which bus-network system the load is scheduled on (paper §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemModel {
    /// BUS-LINEAR-CP: dedicated control processor `P_0` distributes the
    /// load; all of `P_1..P_m` are workers.
    Cp,
    /// BUS-LINEAR-NCP-FE: no control processor; `P_1` holds the load and has
    /// a front end (overlaps its own computation with communication).
    NcpFe,
    /// BUS-LINEAR-NCP-NFE: no control processor; `P_m` holds the load and
    /// has no front end (computes only after all sends finish).
    NcpNfe,
}

/// All three models, in paper order — convenient for sweeps.
pub const ALL_MODELS: [SystemModel; 3] = [SystemModel::Cp, SystemModel::NcpFe, SystemModel::NcpNfe];

impl SystemModel {
    /// Index (0-based) of the load-originating processor among the `m`
    /// computing processors, or `None` for the CP model (the originator
    /// `P_0` computes nothing and is not part of the allocation vector).
    pub fn originator(&self, m: usize) -> Option<usize> {
        match self {
            SystemModel::Cp => None,
            SystemModel::NcpFe => Some(0),
            SystemModel::NcpNfe => Some(m.checked_sub(1).expect("m >= 1")),
        }
    }

    /// Short machine-readable name used in benchmark/experiment output.
    pub fn tag(&self) -> &'static str {
        match self {
            SystemModel::Cp => "cp",
            SystemModel::NcpFe => "ncp-fe",
            SystemModel::NcpNfe => "ncp-nfe",
        }
    }
}

impl fmt::Display for SystemModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemModel::Cp => write!(f, "BUS-LINEAR-CP"),
            SystemModel::NcpFe => write!(f, "BUS-LINEAR-NCP-FE"),
            SystemModel::NcpNfe => write!(f, "BUS-LINEAR-NCP-NFE"),
        }
    }
}

/// Invalid [`BusParams`].
#[derive(Debug, Clone, PartialEq)]
pub enum ParamError {
    /// No processors.
    NoProcessors,
    /// A processing rate was zero, negative, NaN or infinite.
    InvalidRate {
        /// Index of the offending processor (0-based).
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// The communication rate was negative, NaN or infinite.
    InvalidCommRate(f64),
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::NoProcessors => write!(f, "at least one processor is required"),
            ParamError::InvalidRate { index, value } => {
                write!(f, "processing rate w[{index}] = {value} must be finite and > 0")
            }
            ParamError::InvalidCommRate(z) => {
                write!(f, "communication rate z = {z} must be finite and >= 0")
            }
        }
    }
}

impl std::error::Error for ParamError {}

/// Parameters of a bus network: communication rate `z` (time per unit load
/// on the bus) and per-processor computing rates `w_i` (time per unit load
/// on `P_i`). Processor indices are 0-based in code (`w[0]` is the paper's
/// `w_1`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BusParams {
    z: f64,
    w: Vec<f64>,
}

impl BusParams {
    /// Validates and constructs parameters.
    ///
    /// `z == 0` is allowed (an infinitely fast bus — useful as a degenerate
    /// case in tests); each `w_i` must be strictly positive and finite.
    pub fn new(z: f64, w: Vec<f64>) -> Result<Self, ParamError> {
        if w.is_empty() {
            return Err(ParamError::NoProcessors);
        }
        if !z.is_finite() || z < 0.0 {
            return Err(ParamError::InvalidCommRate(z));
        }
        for (index, &value) in w.iter().enumerate() {
            if !value.is_finite() || value <= 0.0 {
                return Err(ParamError::InvalidRate { index, value });
            }
        }
        Ok(BusParams { z, w })
    }

    /// Communication rate.
    pub fn z(&self) -> f64 {
        self.z
    }

    /// Processing rates (`w[i]` is the paper's `w_{i+1}`).
    pub fn w(&self) -> &[f64] {
        &self.w
    }

    /// Number of computing processors `m`.
    pub fn m(&self) -> usize {
        self.w.len()
    }

    /// `true` iff the parameters are in the **classical DLT regime**
    /// `z < min_i w_i` (shipping a unit of load is cheaper than computing
    /// it anywhere).
    ///
    /// The optimality theorems of §2 implicitly assume this regime: outside
    /// it, full participation can *increase* the makespan in the NCP-NFE
    /// model (the originator delays its own computation to feed processors
    /// that are not worth feeding), so the equal-finish allocation is
    /// optimal only among full-participation schedules, not globally.
    pub fn in_dlt_regime(&self) -> bool {
        let min_w = self.w.iter().cloned().fold(f64::INFINITY, f64::min);
        self.z < min_w
    }

    /// Parameters with processor `i` removed — the *reduced market* used by
    /// the mechanism's bonus term `T(α(b_{-i}))`.
    ///
    /// Returns `None` when removal would leave an empty system.
    pub fn without(&self, i: usize) -> Option<BusParams> {
        if self.w.len() <= 1 || i >= self.w.len() {
            return None;
        }
        let mut w = self.w.clone();
        w.remove(i);
        Some(BusParams { z: self.z, w })
    }

    /// Parameters with `w[i]` replaced (used to evaluate an allocation under
    /// *observed* rather than bid rates: `T(α(b), (b_{-i}, w̃_i))`).
    ///
    /// # Panics
    /// Panics if `i` is out of bounds or the new rate is invalid.
    pub fn with_rate(&self, i: usize, w_i: f64) -> BusParams {
        assert!(w_i.is_finite() && w_i > 0.0, "invalid rate {w_i}");
        let mut w = self.w.clone();
        w[i] = w_i;
        BusParams { z: self.z, w }
    }

    /// Replaces `w[i]` in place — the mutating counterpart of
    /// [`BusParams::with_rate`], used by the incremental chain cache
    /// ([`crate::ChainState`]) to avoid rebuilding the parameter vector on
    /// every bid update.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds or the new rate is invalid (same
    /// contract as [`BusParams::with_rate`]).
    pub fn set_rate(&mut self, i: usize, w_i: f64) {
        assert!(w_i.is_finite() && w_i > 0.0, "invalid rate {w_i}");
        self.w[i] = w_i;
    }

    /// Parameters reordered by `perm` (`perm[k]` = old index of the
    /// processor now in position `k`). Used by order-invariance checks
    /// (Theorem 2.2).
    ///
    /// # Panics
    /// Panics if `perm` is not a permutation of `0..m`.
    pub fn permuted(&self, perm: &[usize]) -> BusParams {
        assert_eq!(perm.len(), self.w.len(), "permutation length mismatch");
        let mut seen = vec![false; self.w.len()];
        let w = perm
            .iter()
            .map(|&old| {
                assert!(!seen[old], "index {old} repeated in permutation");
                seen[old] = true;
                self.w[old]
            })
            .collect();
        BusParams { z: self.z, w }
    }
}

/// Finishing times `T_i(α)` for an arbitrary (not necessarily optimal)
/// allocation, per Eqs. (1)–(3).
///
/// The allocation need not sum to 1 — the equations are linear in `α` and
/// partial allocations arise in fault-injected protocol runs.
///
/// One subtlety for [`SystemModel::NcpFe`]: the paper writes
/// `T_i = z·Σ_{j≤i} α_j + α_i w_i` with the sum starting at `j = 1`, but
/// `P_1`'s own fraction never crosses the bus (the load is already there),
/// as Figure 2 shows — the first transmission on the bus is `α_2 z`. The
/// communication prefix therefore starts at `j = 2`. The same closed form
/// (Algorithm 2.1) solves both readings because only *differences* of
/// consecutive finish times constrain the optimum; we implement the
/// figure-accurate timing so the discrete-event simulator and the closed
/// form agree exactly.
///
/// # Panics
/// Panics if `alloc.len() != params.m()`.
pub fn finish_times(model: SystemModel, params: &BusParams, alloc: &[f64]) -> Vec<f64> {
    let mut times = Vec::with_capacity(params.m());
    finish_times_into(model, params, alloc, &mut times);
    times
}

/// [`finish_times`] writing into a caller-owned buffer (cleared first) —
/// the allocation-free variant used by the incremental auction engine's
/// re-solve path. Produces bit-identical values to [`finish_times`].
///
/// # Panics
/// Panics if `alloc.len() != params.m()`.
pub fn finish_times_into(
    model: SystemModel,
    params: &BusParams,
    alloc: &[f64],
    times: &mut Vec<f64>,
) {
    let m = params.m();
    assert_eq!(alloc.len(), m, "allocation length mismatch");
    let z = params.z();
    let w = params.w();
    times.clear();
    match model {
        SystemModel::Cp => {
            // T_i = z·Σ_{j≤i} α_j + α_i·w_i
            let mut prefix = 0.0;
            for i in 0..m {
                prefix += alloc[i];
                times.push(z * prefix + alloc[i] * w[i]);
            }
        }
        SystemModel::NcpFe => {
            // P_1 computes immediately; P_i (i≥2) waits for α_2..α_i.
            times.push(alloc[0] * w[0]);
            let mut prefix = 0.0;
            for i in 1..m {
                prefix += alloc[i];
                times.push(z * prefix + alloc[i] * w[i]);
            }
        }
        SystemModel::NcpNfe => {
            // P_m sends α_1..α_{m-1} first, then computes its own fraction.
            let mut prefix = 0.0;
            for i in 0..m.saturating_sub(1) {
                prefix += alloc[i];
                times.push(z * prefix + alloc[i] * w[i]);
            }
            times.push(z * prefix + alloc[m - 1] * w[m - 1]);
        }
    }
}

/// Total execution time `T(α) = max_i T_i(α)` of an allocation.
pub fn makespan(model: SystemModel, params: &BusParams, alloc: &[f64]) -> f64 {
    finish_times(model, params, alloc)
        .into_iter()
        .fold(f64::NEG_INFINITY, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params3() -> BusParams {
        BusParams::new(0.5, vec![1.0, 2.0, 4.0]).unwrap()
    }

    #[test]
    fn validation() {
        assert!(matches!(
            BusParams::new(0.1, vec![]),
            Err(ParamError::NoProcessors)
        ));
        assert!(matches!(
            BusParams::new(0.1, vec![1.0, 0.0]),
            Err(ParamError::InvalidRate { index: 1, .. })
        ));
        assert!(matches!(
            BusParams::new(0.1, vec![1.0, -2.0]),
            Err(ParamError::InvalidRate { index: 1, .. })
        ));
        assert!(matches!(
            BusParams::new(0.1, vec![f64::NAN]),
            Err(ParamError::InvalidRate { index: 0, .. })
        ));
        assert!(matches!(
            BusParams::new(-0.1, vec![1.0]),
            Err(ParamError::InvalidCommRate(_))
        ));
        assert!(matches!(
            BusParams::new(f64::INFINITY, vec![1.0]),
            Err(ParamError::InvalidCommRate(_))
        ));
        assert!(BusParams::new(0.0, vec![1.0]).is_ok());
    }

    #[test]
    fn finish_times_cp_hand_computed() {
        // z=0.5, w=(1,2,4), α=(0.5, 0.3, 0.2):
        // T_1 = 0.5·0.5 + 0.5·1 = 0.75
        // T_2 = 0.5·0.8 + 0.3·2 = 1.0
        // T_3 = 0.5·1.0 + 0.2·4 = 1.3
        let t = finish_times(SystemModel::Cp, &params3(), &[0.5, 0.3, 0.2]);
        assert!((t[0] - 0.75).abs() < 1e-12);
        assert!((t[1] - 1.0).abs() < 1e-12);
        assert!((t[2] - 1.3).abs() < 1e-12);
    }

    #[test]
    fn finish_times_ncp_fe_hand_computed() {
        // T_1 = 0.5·1 = 0.5 (no communication for the originator)
        // T_2 = 0.5·0.3 + 0.3·2 = 0.75
        // T_3 = 0.5·0.5 + 0.2·4 = 1.05
        let t = finish_times(SystemModel::NcpFe, &params3(), &[0.5, 0.3, 0.2]);
        assert!((t[0] - 0.5).abs() < 1e-12);
        assert!((t[1] - 0.75).abs() < 1e-12);
        assert!((t[2] - 1.05).abs() < 1e-12);
    }

    #[test]
    fn finish_times_ncp_nfe_hand_computed() {
        // P_3 is the originator.
        // T_1 = 0.5·0.5 + 0.5·1 = 0.75
        // T_2 = 0.5·0.8 + 0.3·2 = 1.0
        // T_3 = 0.5·0.8 + 0.2·4 = 1.2   (prefix excludes α_3)
        let t = finish_times(SystemModel::NcpNfe, &params3(), &[0.5, 0.3, 0.2]);
        assert!((t[0] - 0.75).abs() < 1e-12);
        assert!((t[1] - 1.0).abs() < 1e-12);
        assert!((t[2] - 1.2).abs() < 1e-12);
    }

    #[test]
    fn single_processor() {
        let p = BusParams::new(0.5, vec![2.0]).unwrap();
        assert_eq!(finish_times(SystemModel::NcpFe, &p, &[1.0]), vec![2.0]);
        // NCP-NFE with m=1: originator computes everything, nothing is sent.
        assert_eq!(finish_times(SystemModel::NcpNfe, &p, &[1.0]), vec![2.0]);
        // CP: the single worker still receives its data over the bus.
        assert_eq!(finish_times(SystemModel::Cp, &p, &[1.0]), vec![2.5]);
    }

    #[test]
    fn makespan_is_max() {
        let p = params3();
        let a = [0.5, 0.3, 0.2];
        for model in ALL_MODELS {
            let t = finish_times(model, &p, &a);
            let expect = t.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert_eq!(makespan(model, &p, &a), expect);
        }
    }

    #[test]
    fn originator_index() {
        assert_eq!(SystemModel::Cp.originator(5), None);
        assert_eq!(SystemModel::NcpFe.originator(5), Some(0));
        assert_eq!(SystemModel::NcpNfe.originator(5), Some(4));
    }

    #[test]
    fn without_reduces() {
        let p = params3();
        let q = p.without(1).unwrap();
        assert_eq!(q.w(), &[1.0, 4.0]);
        assert_eq!(q.z(), 0.5);
        assert!(p.without(3).is_none());
        let single = BusParams::new(0.1, vec![1.0]).unwrap();
        assert!(single.without(0).is_none());
    }

    #[test]
    fn with_rate_replaces() {
        let p = params3().with_rate(2, 8.0);
        assert_eq!(p.w(), &[1.0, 2.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "invalid rate")]
    fn with_rate_rejects_nonpositive() {
        let _ = params3().with_rate(0, 0.0);
    }

    #[test]
    fn permuted_reorders() {
        let p = params3().permuted(&[2, 0, 1]);
        assert_eq!(p.w(), &[4.0, 1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "repeated")]
    fn permuted_rejects_duplicates() {
        let _ = params3().permuted(&[0, 0, 1]);
    }

    #[test]
    fn zero_allocation_times() {
        // A processor allocated nothing finishes at its communication time
        // prefix — degenerate but well-defined.
        let t = finish_times(SystemModel::Cp, &params3(), &[0.0, 0.0, 0.0]);
        assert_eq!(t, vec![0.0, 0.0, 0.0]);
    }
}
