//! # `dls-dlt` — Divisible Load Theory core
//!
//! Implements §2 of Carroll & Grosu, *A Strategyproof Mechanism for
//! Scheduling Divisible Loads in Bus Networks without Control Processor*
//! (IPPS 2006): the three bus-network system models, their finishing-time
//! equations (Eqs. 1–3), and the closed-form optimal allocation algorithms
//! (Algorithms 2.1 and 2.2, plus the CP variant from the DLT literature).
//!
//! ## The three models
//!
//! A divisible load of (normalized) size 1 is split into fractions
//! `α = (α_1, …, α_m)`, `Σ α_i = 1`. Processor `P_i` computes a unit of load
//! in time `w_i`; the bus transmits a unit in time `z` (one-port model: only
//! one transmission at a time).
//!
//! * [`SystemModel::Cp`] — **BUS-LINEAR-CP**: a dedicated, computeless
//!   control processor `P_0` sends the fractions in order; every worker
//!   waits for its data:
//!   `T_i(α) = z·Σ_{j≤i} α_j + α_i·w_i` (Eq. 1).
//! * [`SystemModel::NcpFe`] — **BUS-LINEAR-NCP-FE**: no control processor;
//!   the load *originates at* `P_1`, which has a front end and computes
//!   while it transmits: `T_1 = α_1 w_1`,
//!   `T_i = z·Σ_{j≤i} α_j + α_i w_i` for `i ≥ 2` (Eq. 2; the `j = 1` term is
//!   excluded from the communication prefix because `P_1` never sends its
//!   own fraction over the bus — see [`finish_times`]).
//! * [`SystemModel::NcpNfe`] — **BUS-LINEAR-NCP-NFE**: the load originates
//!   at `P_m`, which has *no* front end and therefore computes only after
//!   finishing all sends: `T_i = z·Σ_{j≤i} α_j + α_i w_i` for `i < m`,
//!   `T_m = z·Σ_{j≤m−1} α_j + α_m w_m` (Eq. 3).
//!
//! ## Optimality
//!
//! * **Theorem 2.1** — the optimal allocation has every processor finish at
//!   the same instant. [`optimal::fractions`] returns that allocation;
//!   [`diagnostics::equal_finish_residual`] measures how far any allocation
//!   is from satisfying it.
//! * **Theorem 2.2** — the optimal makespan does not depend on the order in
//!   which the originator serves the processors.
//!   [`diagnostics::order_invariance_spread`] measures this empirically.
//!
//! Both f64 ([`optimal`]) and exact-rational ([`exact`]) solvers are
//! provided; the exact solver certifies the floating-point one in tests.
//!
//! ```
//! use dls_dlt::{BusParams, SystemModel, optimal, finish_times};
//!
//! let params = BusParams::new(0.2, vec![1.0, 2.0, 3.0]).unwrap();
//! let alpha = optimal::fractions(SystemModel::NcpFe, &params);
//! let times = finish_times(SystemModel::NcpFe, &params, &alpha);
//! // Theorem 2.1: everyone finishes together.
//! let spread = times.iter().cloned().fold(f64::MIN, f64::max)
//!     - times.iter().cloned().fold(f64::MAX, f64::min);
//! assert!(spread < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod diagnostics;
pub mod exact;
pub mod linear;
pub mod loo;
mod model;
pub mod multiload;
pub mod optimal;

pub use chain::ChainState;
pub use loo::LeaveOneOut;
pub use multiload::{
    pipeline_schedule, pipeline_schedule_exact, InstallmentScheduler, LoadSpec, MultiLoadError,
    PipelineSchedule,
};
pub use model::{
    finish_times, finish_times_into, makespan, BusParams, ParamError, SystemModel, ALL_MODELS,
};
