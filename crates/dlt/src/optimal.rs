//! Closed-form optimal allocations (Algorithms 2.1 and 2.2, plus the CP
//! variant), in `f64`.
//!
//! All three models reduce to a first-order linear recursion between
//! consecutive fractions derived from the *equal finish time* optimality
//! condition (Theorem 2.1):
//!
//! * CP and NCP-FE (Eq. 7): `α_i·w_i = α_{i+1}·(z + w_{i+1})`, i.e.
//!   `α_{i+1} = k_i·α_i` with `k_i = w_i / (z + w_{i+1})`.
//! * NCP-NFE (Eqs. 8–9): the same `k_i` for `i ≤ m−2`, but the originator
//!   `P_m` receives nothing over the bus, so the last link is
//!   `α_m = (w_{m−1}/w_m)·α_{m−1}`.
//!
//! Normalizing by `Σ α_i = 1` gives Algorithm 2.1 / 2.2. The computation is
//! `O(m)` and allocation-order independent (Theorem 2.2).

use crate::loo::LeaveOneOut;
use crate::model::{makespan, BusParams, SystemModel};

/// Optimal load fractions `α(b)` for the given model and parameters.
///
/// The result sums to 1 (within rounding), has every component in `(0, 1]`,
/// and equalizes all finishing times (Theorem 2.1).
pub fn fractions(model: SystemModel, params: &BusParams) -> Vec<f64> {
    let mut u = Vec::with_capacity(params.m());
    fractions_into(model, params, &mut u);
    u
}

/// [`fractions`] writing into a caller-owned buffer (cleared first) — the
/// allocation-free variant used by the incremental auction engine. Produces
/// bit-identical values to [`fractions`].
pub fn fractions_into(model: SystemModel, params: &BusParams, u: &mut Vec<f64>) {
    let m = params.m();
    let z = params.z();
    let w = params.w();
    u.clear();
    if m == 1 {
        u.push(1.0);
        return;
    }
    // Unnormalized fractions u_i with u_1 = 1, then α_i = u_i / Σ u.
    u.push(1.0);
    match model {
        SystemModel::Cp | SystemModel::NcpFe => {
            for i in 0..m - 1 {
                let k = w[i] / (z + w[i + 1]);
                let next = u[i] * k;
                u.push(next);
            }
        }
        SystemModel::NcpNfe => {
            for i in 0..m - 2 {
                let k = w[i] / (z + w[i + 1]);
                let next = u[i] * k;
                u.push(next);
            }
            let last = u[m - 2] * (w[m - 2] / w[m - 1]);
            u.push(last);
        }
    }
    let total: f64 = u.iter().sum();
    for x in u.iter_mut() {
        *x /= total;
    }
}

/// Optimal total execution time `T(α(b))` for the given model/parameters.
pub fn optimal_makespan(model: SystemModel, params: &BusParams) -> f64 {
    let alpha = fractions(model, params);
    makespan(model, params, &alpha)
}

/// Optimal makespan of the *reduced market* with processor `i` removed —
/// the `T(α(b_{-i}), b_{-i})` term of the DLS-BL bonus.
///
/// For the NCP models the originator role follows the model definition in
/// the reduced market (the processor that holds the load is whichever
/// remains in the originator position). Returns `None` when only one
/// processor exists (no reduced market).
///
/// Backed by the O(m) chain-splice solver ([`crate::loo::LeaveOneOut`]); a
/// single call is O(m) like the naive re-solve, but computing *all* m terms
/// of a payment vector through one [`crate::loo::LeaveOneOut`] is O(m)
/// total. [`makespan_without_naive`] retains the full re-solve as the
/// differential-test oracle.
pub fn makespan_without(model: SystemModel, params: &BusParams, i: usize) -> Option<f64> {
    LeaveOneOut::new(model, params.z(), params.w().to_vec()).makespan_without(i)
}

/// Naive leave-one-out makespan: rebuilds the reduced market and re-solves
/// it from scratch (Θ(m) per call). Kept as the independent oracle that
/// differential tests pit against [`makespan_without`].
pub fn makespan_without_naive(
    model: SystemModel,
    params: &BusParams,
    i: usize,
) -> Option<f64> {
    let reduced = params.without(i)?;
    Some(optimal_makespan(model, &reduced))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{finish_times, ALL_MODELS};

    fn spread(times: &[f64]) -> f64 {
        let max = times.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        max - min
    }

    #[test]
    fn sums_to_one_all_models() {
        let p = BusParams::new(0.25, vec![1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        for model in ALL_MODELS {
            let a = fractions(model, &p);
            assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-12, "{model}");
            assert!(a.iter().all(|&x| x > 0.0 && x <= 1.0), "{model}");
        }
    }

    #[test]
    fn equal_finish_times_all_models() {
        let p = BusParams::new(0.3, vec![2.0, 1.0, 4.0, 3.0]).unwrap();
        for model in ALL_MODELS {
            let a = fractions(model, &p);
            let t = finish_times(model, &p, &a);
            assert!(spread(&t) < 1e-12, "{model}: {t:?}");
        }
    }

    #[test]
    fn ncp_fe_two_processors_hand_solved() {
        // z=1, w=(2,3): k_1 = 2/(1+3) = 0.5 → α = (2/3, 1/3).
        let p = BusParams::new(1.0, vec![2.0, 3.0]).unwrap();
        let a = fractions(SystemModel::NcpFe, &p);
        assert!((a[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((a[1] - 1.0 / 3.0).abs() < 1e-12);
        // Makespan = α_1·w_1 = 4/3.
        assert!((optimal_makespan(SystemModel::NcpFe, &p) - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ncp_nfe_two_processors_hand_solved() {
        // Eq. 9 only: α_1·w_1 = α_2·w_2 with w=(2,3) → α = (3/5, 2/5).
        let p = BusParams::new(1.0, vec![2.0, 3.0]).unwrap();
        let a = fractions(SystemModel::NcpNfe, &p);
        assert!((a[0] - 0.6).abs() < 1e-12);
        assert!((a[1] - 0.4).abs() < 1e-12);
        // T_1 = z·α_1 + α_1·w_1 = 0.6 + 1.2 = 1.8 = T_2 = 0.6 + 0.4·3.
        assert!((optimal_makespan(SystemModel::NcpNfe, &p) - 1.8).abs() < 1e-12);
    }

    #[test]
    fn cp_and_ncp_fe_share_fractions() {
        // Both satisfy the same recursion (Eq. 7), so the fractions agree;
        // only the makespans differ (CP pays z·α_1 up front).
        let p = BusParams::new(0.4, vec![1.5, 2.5, 3.5]).unwrap();
        let a_cp = fractions(SystemModel::Cp, &p);
        let a_fe = fractions(SystemModel::NcpFe, &p);
        for (x, y) in a_cp.iter().zip(&a_fe) {
            assert!((x - y).abs() < 1e-15);
        }
        assert!(
            optimal_makespan(SystemModel::Cp, &p) > optimal_makespan(SystemModel::NcpFe, &p)
        );
    }

    #[test]
    fn single_processor_degenerate() {
        let p = BusParams::new(0.7, vec![3.0]).unwrap();
        for model in ALL_MODELS {
            assert_eq!(fractions(model, &p), vec![1.0], "{model}");
        }
        assert_eq!(optimal_makespan(SystemModel::NcpFe, &p), 3.0);
        assert_eq!(optimal_makespan(SystemModel::Cp, &p), 3.7);
    }

    #[test]
    fn faster_processor_gets_more_load() {
        let p = BusParams::new(0.1, vec![1.0, 1.0, 5.0]).unwrap();
        for model in ALL_MODELS {
            let a = fractions(model, &p);
            assert!(a[0] > a[2], "{model}: fast P1 should beat slow P3");
        }
    }

    #[test]
    fn homogeneous_cp_uniformish() {
        // Equal w: fractions decay geometrically with ratio w/(z+w) < 1.
        let p = BusParams::new(0.5, vec![2.0; 4]).unwrap();
        let a = fractions(SystemModel::Cp, &p);
        let k = 2.0 / 2.5;
        for i in 0..3 {
            assert!((a[i + 1] / a[i] - k).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_comm_rate_balances_by_speed() {
        // z = 0: the bus is free, so α_i ∝ 1/w_i for every model.
        let p = BusParams::new(0.0, vec![1.0, 2.0, 4.0]).unwrap();
        for model in ALL_MODELS {
            let a = fractions(model, &p);
            assert!((a[0] - 4.0 / 7.0).abs() < 1e-12, "{model}");
            assert!((a[1] - 2.0 / 7.0).abs() < 1e-12, "{model}");
            assert!((a[2] - 1.0 / 7.0).abs() < 1e-12, "{model}");
        }
    }

    #[test]
    fn makespan_without_shrinks_capacity() {
        let p = BusParams::new(0.2, vec![1.0, 2.0, 3.0]).unwrap();
        for model in ALL_MODELS {
            let full = optimal_makespan(model, &p);
            for i in 0..3 {
                let reduced = makespan_without(model, &p, i).unwrap();
                assert!(
                    reduced > full,
                    "{model}: removing P{} should slow the system",
                    i + 1
                );
            }
        }
        let single = BusParams::new(0.2, vec![1.0]).unwrap();
        assert!(makespan_without(SystemModel::Cp, &single, 0).is_none());
    }

    #[test]
    fn removing_nfe_originator_can_speed_up() {
        // Regression-captured caveat: the reduced-market makespan is NOT
        // always larger, even inside the DLT regime. In NCP-NFE a slow
        // originator forces the whole schedule through its bus sends; the
        // counterfactual market without it (originator role migrating to
        // the remaining processor) can be faster. The mechanism's bonus
        // term B_i is therefore negative for such an originator — voluntary
        // participation (Theorem 5.3) is only guaranteed for workers.
        let p = BusParams::new(0.86, vec![1.0, 3.58]).unwrap();
        assert!(p.in_dlt_regime());
        let full = optimal_makespan(SystemModel::NcpNfe, &p);
        let without_originator = makespan_without(SystemModel::NcpNfe, &p, 1).unwrap();
        assert!(
            without_originator < full,
            "expected reduced {without_originator} < full {full}"
        );
    }

    #[test]
    fn adding_a_processor_never_hurts() {
        // Theorem 2.1 corollary: optimal makespan decreases with more
        // processors (participation is always beneficial).
        let base = BusParams::new(0.2, vec![2.0, 3.0]).unwrap();
        let more = BusParams::new(0.2, vec![2.0, 3.0, 10.0]).unwrap();
        for model in ALL_MODELS {
            assert!(
                optimal_makespan(model, &more) < optimal_makespan(model, &base),
                "{model}"
            );
        }
    }

    #[test]
    fn large_m_stable() {
        let w: Vec<f64> = (0..1000).map(|i| 1.0 + (i % 7) as f64 * 0.5).collect();
        let p = BusParams::new(0.01, w).unwrap();
        for model in ALL_MODELS {
            let a = fractions(model, &p);
            assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-9, "{model}");
            let t = finish_times(model, &p, &a);
            assert!(spread(&t) / t[0] < 1e-9, "{model}");
        }
    }
}
