//! O(m) leave-one-out makespan solver — the DLS-BL bonus hot path.
//!
//! The first bonus term `T(α(b_{-i}), b_{-i})` needs the optimal makespan of
//! every reduced market `b_{-i}`. Solving each from scratch is Θ(m) per
//! agent, Θ(m²) per payment vector — and in the NCP protocol *every*
//! processor recomputes the vector, Θ(m³) network-wide. This module computes
//! all m leave-one-out makespans in O(m) total by exploiting the chain
//! structure of Algorithms 2.1/2.2.
//!
//! ## Derivation (the chain splice)
//!
//! The unnormalized fractions satisfy `u_1 = 1`, `u_{j+1} = u_j·k_j` with
//! `k_j = w_j/(z + w_{j+1})` (CP and NCP-FE; NCP-NFE replaces the last link
//! by `w_{m−1}/w_m`). Telescoping,
//!
//! ```text
//! u_j = (w_1 ⋯ w_{j−1}) / ((z+w_2) ⋯ (z+w_j)),
//! ```
//!
//! and the optimal makespan is `T = c(w_1)/S` with `S = Σ_j u_j`, where
//! `c(x) = z + x` for CP (and NCP-NFE with m ≥ 2) and `c(x) = x` for NCP-FE.
//! Removing a middle agent `i` deletes the factor `w_i` from every later
//! numerator and the factor `z + w_i` from every later denominator — i.e. it
//! multiplies `u_j` for every `j > i` by the *neighbor-independent* splice
//! factor
//!
//! ```text
//! ρ_i = (z + w_i)/w_i,
//! ```
//!
//! so the reduced-market normalizer is `S_{-i} = P_{i−1} + ρ_i·Q_{i+1}` with
//! `P` the prefix sums and `Q` the suffix sums of `u`. Order invariance
//! (Theorem 2.2) is what makes this well-posed per model: the reduced market
//! keeps the surviving processors in their original order, so the same
//! prefix/suffix decomposition applies to CP, NCP-FE, and NCP-NFE alike —
//! only the endpoints need model-specific care (a removed head changes the
//! seed of the chain; a removed NFE originator changes the last link back
//! into a regular one). Each makespan is then O(1) arithmetic operations.
//!
//! The solver is generic over [`Scalar`] so the same splice logic backs both
//! the `f64` mechanism path and the exact-rational certification path; the
//! naive per-agent re-solves are retained as differential-test oracles
//! ([`crate::optimal::makespan_without_naive`] and
//! `dls-mechanism::exact::compute_payments_exact_naive`).

use crate::model::SystemModel;
use dls_num::Rational;

/// Minimal arithmetic surface the leave-one-out solver needs: a commutative
/// field element with by-reference operations (so `Rational` never clones
/// more than necessary).
///
/// Implemented for `f64` (mechanism hot path) and [`Rational`] (exact
/// certification path).
pub trait Scalar: Clone {
    /// The multiplicative identity.
    fn one() -> Self;
    /// `self + rhs`.
    fn add(&self, rhs: &Self) -> Self;
    /// `self · rhs`.
    fn mul(&self, rhs: &Self) -> Self;
    /// `self / rhs` (callers guarantee `rhs != 0`).
    fn div(&self, rhs: &Self) -> Self;
}

impl Scalar for f64 {
    fn one() -> Self {
        1.0
    }
    fn add(&self, rhs: &Self) -> Self {
        self + rhs
    }
    fn mul(&self, rhs: &Self) -> Self {
        self * rhs
    }
    fn div(&self, rhs: &Self) -> Self {
        self / rhs
    }
}

impl Scalar for Rational {
    fn one() -> Self {
        Rational::one()
    }
    fn add(&self, rhs: &Self) -> Self {
        self + rhs
    }
    fn mul(&self, rhs: &Self) -> Self {
        self * rhs
    }
    fn div(&self, rhs: &Self) -> Self {
        self / rhs
    }
}

/// Precomputed chain state answering "optimal makespan of the market with
/// processor `i` removed" in O(1) per query after an O(m) construction.
///
/// Callers guarantee the usual DLT parameter constraints (`z ≥ 0`, every
/// rate `> 0`); they are enforced upstream by `BusParams` / `ExactParams` /
/// the mechanism's input validation and not re-checked here.
#[derive(Debug, Clone)]
pub struct LeaveOneOut<T> {
    model: SystemModel,
    z: T,
    w: Vec<T>,
    /// Unnormalized fractions `u` of the full market (`u[0] = 1`).
    u: Vec<T>,
    /// `prefix[i] = u[0] + … + u[i]`.
    prefix: Vec<T>,
    /// `suffix[i] = u[i] + … + u[m−1]`.
    suffix: Vec<T>,
}

impl<T: Scalar> LeaveOneOut<T> {
    /// Builds the chain state in O(m).
    pub fn new(model: SystemModel, z: T, w: Vec<T>) -> Self {
        let m = w.len();
        let mut u = Vec::with_capacity(m);
        if m > 0 {
            u.push(T::one());
        }
        if m > 1 {
            let plain_links = match model {
                SystemModel::Cp | SystemModel::NcpFe => m - 1,
                SystemModel::NcpNfe => m - 2,
            };
            for i in 0..plain_links {
                let k = w[i].div(&z.add(&w[i + 1]));
                let next = u[i].mul(&k);
                u.push(next);
            }
            if model == SystemModel::NcpNfe {
                let last = u[m - 2].mul(&w[m - 2].div(&w[m - 1]));
                u.push(last);
            }
        }
        let mut prefix: Vec<T> = Vec::with_capacity(m);
        for (i, x) in u.iter().enumerate() {
            prefix.push(if i == 0 { x.clone() } else { prefix[i - 1].add(x) });
        }
        let mut suffix = vec![T::one(); m];
        for i in (0..m).rev() {
            suffix[i] = if i + 1 == m { u[i].clone() } else { suffix[i + 1].add(&u[i]) };
        }
        LeaveOneOut { model, z, w, u, prefix, suffix }
    }

    /// Number of processors in the full market.
    pub fn m(&self) -> usize {
        self.w.len()
    }

    /// The system model the chain was built for.
    pub fn model(&self) -> SystemModel {
        self.model
    }

    /// Optimal makespan of the *full* market (byproduct of the chain state).
    ///
    /// Returns `None` on an empty market.
    pub fn optimal_makespan(&self) -> Option<T> {
        let m = self.m();
        if m == 0 {
            return None;
        }
        if m == 1 {
            return Some(match self.model {
                SystemModel::Cp => self.z.add(&self.w[0]),
                SystemModel::NcpFe | SystemModel::NcpNfe => self.w[0].clone(),
            });
        }
        Some(self.head_cost(&self.w[0]).div(&self.prefix[m - 1]))
    }

    /// Optimal makespan of the market with processor `i` removed, in O(1).
    ///
    /// Returns `None` when `i` is out of range or when no reduced market
    /// exists (`m ≤ 1`), matching [`crate::optimal::makespan_without`].
    pub fn makespan_without(&self, i: usize) -> Option<T> {
        let m = self.m();
        if m <= 1 || i >= m {
            return None;
        }
        if m == 2 {
            // The reduced market is a single processor: T = c₁(w) where
            // c₁ = z + w for CP (the control processor still sends the whole
            // load) and c₁ = w for both NCP models (the survivor holds it).
            let r = &self.w[1 - i];
            return Some(match self.model {
                SystemModel::Cp => self.z.add(r),
                SystemModel::NcpFe | SystemModel::NcpNfe => r.clone(),
            });
        }
        // m ≥ 3 from here; the reduced market has ≥ 2 processors.
        if i == 0 {
            // New head is P_2: its chain is u[1..] verbatim (the shared
            // scale u[1] cancels between numerator and normalizer).
            return Some(self.head_cost(&self.w[1]).mul(&self.u[1]).div(&self.suffix[1]));
        }
        if i == m - 1 && self.model == SystemModel::NcpNfe {
            // Removing the NFE originator promotes P_{m−1} to originator: its
            // incoming link changes from the plain k_{m−2} = w_{m−2}/(z+w_{m−1})
            // to the front-end-free w_{m−2}/w_{m−1}, i.e. the stored u[m−2]
            // (which used the plain link) is rescaled by (z+w_{m−1})/w_{m−1}
            // — in 0-based terms u[m−2]·(z+w[m−2])/w[m−2] — while u[m−1] dies.
            let wl = &self.w[m - 2];
            let tail = self.u[m - 2].mul(&self.z.add(wl)).div(wl);
            let s = self.prefix[m - 3].add(&tail);
            return Some(self.head_cost(&self.w[0]).div(&s));
        }
        // Middle removal (and tail removal for CP/FE, where the suffix is
        // simply empty): every u[j], j > i, is scaled by ρ_i = (z+w_i)/w_i.
        let s = if i == m - 1 {
            self.prefix[i - 1].clone()
        } else {
            let rho = self.z.add(&self.w[i]).div(&self.w[i]);
            self.prefix[i - 1].add(&rho.mul(&self.suffix[i + 1]))
        };
        Some(self.head_cost(&self.w[0]).div(&s))
    }

    /// All m leave-one-out makespans in O(m) total.
    pub fn makespans_without(&self) -> Vec<Option<T>> {
        (0..self.m()).map(|i| self.makespan_without(i)).collect()
    }

    /// Head cost `c(x)` of a multi-processor market whose first surviving
    /// processor has rate `x`: `z + x` for CP and NCP-NFE, `x` for NCP-FE
    /// (the FE originator computes while it transmits).
    fn head_cost(&self, x: &T) -> T {
        match self.model {
            SystemModel::NcpFe => x.clone(),
            SystemModel::Cp | SystemModel::NcpNfe => self.z.add(x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BusParams, ALL_MODELS};
    use crate::optimal;

    fn rat(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    #[test]
    fn matches_naive_f64_all_models() {
        let z = 0.3;
        let w = vec![1.0, 2.5, 0.8, 3.2, 1.7, 2.2];
        let p = BusParams::new(z, w.clone()).unwrap();
        for model in ALL_MODELS {
            let loo = LeaveOneOut::new(model, z, w.clone());
            for i in 0..w.len() {
                let fast = loo.makespan_without(i).unwrap();
                let naive = optimal::makespan_without_naive(model, &p, i).unwrap();
                assert!(
                    (fast - naive).abs() <= 1e-12 * naive.abs(),
                    "{model} i={i}: {fast} vs {naive}"
                );
            }
        }
    }

    #[test]
    fn exact_two_processor_cases() {
        // z=1, w=(2,3). Removing either leaves a solo processor.
        for model in ALL_MODELS {
            let loo = LeaveOneOut::new(model, rat(1, 1), vec![rat(2, 1), rat(3, 1)]);
            let t0 = loo.makespan_without(0).unwrap();
            let t1 = loo.makespan_without(1).unwrap();
            match model {
                SystemModel::Cp => {
                    assert_eq!(t0, rat(4, 1));
                    assert_eq!(t1, rat(3, 1));
                }
                SystemModel::NcpFe | SystemModel::NcpNfe => {
                    assert_eq!(t0, rat(3, 1));
                    assert_eq!(t1, rat(2, 1));
                }
            }
        }
    }

    #[test]
    fn exact_matches_full_resolve_three_processors() {
        use crate::exact::{self, ExactParams};
        let z = rat(1, 4);
        let w = vec![rat(1, 1), rat(2, 1), rat(3, 1)];
        for model in ALL_MODELS {
            let loo = LeaveOneOut::new(model, z.clone(), w.clone());
            for i in 0..3 {
                let mut reduced = w.clone();
                reduced.remove(i);
                let rp = ExactParams::new(z.clone(), reduced);
                let naive = exact::optimal_makespan(model, &rp);
                assert_eq!(loo.makespan_without(i).unwrap(), naive, "{model} i={i}");
            }
        }
    }

    #[test]
    fn degenerate_markets() {
        for model in ALL_MODELS {
            let empty: LeaveOneOut<f64> = LeaveOneOut::new(model, 0.2, vec![]);
            assert!(empty.optimal_makespan().is_none());
            assert!(empty.makespan_without(0).is_none());

            let single = LeaveOneOut::new(model, 0.2, vec![2.0]);
            assert_eq!(single.makespan_without(0), None, "{model}");
            assert!(single.makespan_without(1).is_none());

            let pair = LeaveOneOut::new(model, 0.2, vec![2.0, 3.0]);
            assert!(pair.makespan_without(2).is_none());
        }
    }

    #[test]
    fn full_makespan_matches_optimal() {
        let z = 0.15;
        let w = vec![1.0, 2.0, 1.5, 3.0];
        let p = BusParams::new(z, w.clone()).unwrap();
        for model in ALL_MODELS {
            let loo = LeaveOneOut::new(model, z, w.clone());
            let fast = loo.optimal_makespan().unwrap();
            let naive = optimal::optimal_makespan(model, &p);
            assert!((fast - naive).abs() < 1e-12, "{model}: {fast} vs {naive}");
        }
        for model in ALL_MODELS {
            let single = LeaveOneOut::new(model, 0.5, vec![3.0]);
            let expected = if model == SystemModel::Cp { 3.5 } else { 3.0 };
            assert_eq!(single.optimal_makespan(), Some(expected), "{model}");
        }
    }
}
