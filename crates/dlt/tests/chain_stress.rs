//! Long-horizon splice stress: ~10⁴ random `update_bid` calls per model,
//! interleaved across all three bus models from one frozen update stream,
//! asserting bit-exact agreement with `update_bid_rebuild` (and with a
//! from-scratch `ChainState::new`) at every step.
//!
//! The short differential sweeps pin splice == rebuild over dozens of
//! updates; the multi-load installment scheduler leans on the stronger
//! claim that a chain spliced *thousands* of times never drifts from the
//! from-scratch solve by even one ULP — identical expressions evaluated
//! in identical order, forever. This test is that claim, executable.

use dls_dlt::{BusParams, ChainState, ALL_MODELS};

/// splitmix64 (Steele, Lea & Flood 2014) — frozen, dependency-free.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Dyadic rate in [1/8, 8]: `j/8` with `j` uniform in `1..=64`.
fn dyadic_rate(state: &mut u64) -> f64 {
    ((splitmix64(state) % 64) + 1) as f64 / 8.0
}

/// Update position biased toward the special splice slots: head (i = 0),
/// tail (i = m−1) and second-to-last each get ~1/8 of the stream, the
/// rest is uniform.
fn position(state: &mut u64, m: usize) -> usize {
    match splitmix64(state) % 8 {
        0 => 0,
        1 => m - 1,
        2 => m.saturating_sub(2),
        _ => (splitmix64(state) as usize) % m,
    }
}

#[test]
fn ten_thousand_splices_stay_bit_exact_across_models() {
    const M: usize = 97;
    const STEPS: usize = 10_000;
    // How often to cross-check against a from-scratch solve on the
    // current rates (every step would be O(steps·m²) pointless work; the
    // rebuild twin already re-derives everything every step).
    const FRESH_EVERY: usize = 500;

    let mut state = 0xc0ffee_u64;
    let init: Vec<f64> = (0..M).map(|_| dyadic_rate(&mut state)).collect();
    let params = BusParams::new(0.125, init.clone()).unwrap();

    // One chain pair per model, all fed from the single interleaved
    // update stream below.
    let mut pairs: Vec<_> = ALL_MODELS
        .iter()
        .map(|&model| {
            (
                model,
                ChainState::new(model, &params),
                ChainState::new(model, &params),
                init.clone(),
            )
        })
        .collect();

    let mut inc_frac = Vec::new();
    let mut ref_frac = Vec::new();
    for step in 0..STEPS {
        // Interleave: each step updates exactly one model's pair, cycling
        // through models while drawing from the shared stream.
        let slot = step % pairs.len();
        let (model, inc, refc, rates) = &mut pairs[slot];
        let i = position(&mut state, M);
        let w = dyadic_rate(&mut state);
        inc.update_bid(i, w);
        refc.update_bid_rebuild(i, w);
        rates[i] = w;

        assert_eq!(
            inc.optimal_makespan().to_bits(),
            refc.optimal_makespan().to_bits(),
            "{model} step {step}: makespan drifted"
        );
        inc.fractions_into(&mut inc_frac);
        refc.fractions_into(&mut ref_frac);
        for (j, (a, b)) in inc_frac.iter().zip(&ref_frac).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{model} step {step}: fraction {j} drifted"
            );
        }
        // Leave-one-out quotes exercise the lazy suffix path, including
        // the head/tail/NFE-originator special splices.
        for probe in [0, i, M - 1] {
            assert_eq!(
                inc.makespan_without(probe).map(f64::to_bits),
                refc.makespan_without(probe).map(f64::to_bits),
                "{model} step {step}: makespan_without({probe}) drifted"
            );
        }

        if step % FRESH_EVERY == FRESH_EVERY - 1 {
            let fresh = ChainState::new(*model, &BusParams::new(0.125, rates.clone()).unwrap());
            assert_eq!(
                inc.optimal_makespan().to_bits(),
                fresh.optimal_makespan().to_bits(),
                "{model} step {step}: drifted from from-scratch solve"
            );
            fresh.fractions_into(&mut ref_frac);
            for (j, (a, b)) in inc_frac.iter().zip(&ref_frac).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{model} step {step}: fraction {j} drifted from fresh"
                );
            }
        }
    }
}
