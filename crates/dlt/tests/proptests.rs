//! Property tests for the DLT core: Theorems 2.1 and 2.2 and solver
//! cross-certification on random parameter sets.
//!
//! **Fidelity note:** in this offline workspace these properties run
//! against the vendored proptest stand-in (`vendor/proptest`): a
//! deterministic per-test seed, a fixed case count, no shrinking, and no
//! run-to-run variation. A green run is a frozen regression sweep (256
//! cases by default), not real fuzzing — re-run the suite against
//! upstream proptest whenever registry access is available (see
//! `vendor/README.md`).

use dls_dlt::{
    diagnostics, exact, finish_times, makespan, optimal, BusParams, SystemModel, ALL_MODELS,
};
use proptest::prelude::*;

/// Random parameter sets: 1–12 processors, rates spanning two orders of
/// magnitude, bus from free to dominant. Not necessarily in the DLT regime.
fn arb_params() -> impl Strategy<Value = BusParams> {
    (
        0.0f64..5.0,
        prop::collection::vec(0.1f64..10.0, 1..12),
    )
        .prop_map(|(z, w)| BusParams::new(z, w).unwrap())
}

/// Parameter sets restricted to the classical DLT regime `z < min(w)`,
/// where the §2 optimality theorems hold globally (see
/// `BusParams::in_dlt_regime`).
fn arb_regime_params() -> impl Strategy<Value = BusParams> {
    (
        0.0f64..0.95,
        prop::collection::vec(1.0f64..10.0, 1..12),
    )
        .prop_map(|(zfrac, w)| {
            let min_w = w.iter().cloned().fold(f64::INFINITY, f64::min);
            let p = BusParams::new(zfrac * min_w, w).unwrap();
            assert!(p.in_dlt_regime());
            p
        })
}

fn arb_model() -> impl Strategy<Value = SystemModel> {
    prop::sample::select(ALL_MODELS.to_vec())
}

proptest! {
    #[test]
    fn fractions_form_a_distribution(model in arb_model(), p in arb_params()) {
        let a = optimal::fractions(model, &p);
        prop_assert_eq!(a.len(), p.m());
        prop_assert!(a.iter().all(|&x| x > 0.0 && x <= 1.0 + 1e-12));
        prop_assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn theorem_2_1_equal_finish(model in arb_model(), p in arb_params()) {
        let a = optimal::fractions(model, &p);
        let t = makespan(model, &p, &a);
        let residual = diagnostics::equal_finish_residual(model, &p, &a);
        prop_assert!(residual <= t * 1e-9, "residual {} vs makespan {}", residual, t);
    }

    #[test]
    fn theorem_2_1_optimality(model in arb_model(), p in arb_regime_params(),
                              noise_pool in prop::collection::vec(0.01f64..1.0, 12)) {
        // Any other distribution is no better than the equal-finish one.
        let noise = &noise_pool[..p.m()];
        let a_opt = optimal::fractions(model, &p);
        let t_opt = makespan(model, &p, &a_opt);
        let total: f64 = noise.iter().sum();
        let a_other: Vec<f64> = noise.iter().map(|x| x / total).collect();
        let t_other = makespan(model, &p, &a_other);
        prop_assert!(t_other >= t_opt * (1.0 - 1e-9),
            "other {} beat optimal {}", t_other, t_opt);
    }

    #[test]
    fn theorem_2_2_order_invariance(model in arb_model(), p in arb_params()) {
        let perms = diagnostics::originator_fixed_perms(model, p.m());
        let spread = diagnostics::order_invariance_spread(model, &p, &perms);
        prop_assert!(spread < 1e-9, "spread {}", spread);
    }

    #[test]
    fn exact_certifies_f64(model in arb_model(), p in arb_params()) {
        let ep = exact::ExactParams::from_f64(p.z(), p.w());
        let af = optimal::fractions(model, &p);
        let ae = exact::fractions(model, &ep);
        for (f, e) in af.iter().zip(&ae) {
            prop_assert!((f - e.to_f64()).abs() < 1e-9, "{} vs {}", f, e.to_f64());
        }
        // Exact finish times are *exactly* equal.
        let te = exact::finish_times(model, &ep, &ae);
        for t in &te {
            prop_assert_eq!(t, &te[0]);
        }
    }

    #[test]
    fn makespan_monotone_in_rates(model in arb_model(), p in arb_regime_params(),
                                  idx in any::<prop::sample::Index>(),
                                  factor in 1.05f64..4.0) {
        // Slowing any processor weakly increases the optimal makespan.
        let i = idx.index(p.m());
        let slower = p.with_rate(i, p.w()[i] * factor);
        let t0 = optimal::optimal_makespan(model, &p);
        let t1 = optimal::optimal_makespan(model, &slower);
        prop_assert!(t1 >= t0 * (1.0 - 1e-12), "{} -> {}", t0, t1);
    }

    #[test]
    fn reduced_market_is_slower(model in arb_model(), p in arb_regime_params(),
                                idx in any::<prop::sample::Index>()) {
        // Removing a *worker* always hurts. Removing the NCP originator is a
        // different counterfactual (the originator role migrates, and the
        // makespan can drop for a slow NCP-NFE originator) — see the
        // `removing_nfe_originator_can_speed_up` regression test.
        prop_assume!(p.m() >= 2);
        let i = idx.index(p.m());
        prop_assume!(model.originator(p.m()) != Some(i));
        let full = optimal::optimal_makespan(model, &p);
        let reduced = optimal::makespan_without(model, &p, i).unwrap();
        prop_assert!(reduced >= full * (1.0 - 1e-12),
            "removing P{} sped things up: {} -> {}", i + 1, full, reduced);
    }

    #[test]
    fn out_of_regime_flag_matches_definition(p in arb_params()) {
        let min_w = p.w().iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert_eq!(p.in_dlt_regime(), p.z() < min_w);
    }

    // ---------------- Linear-network extension ----------------

    #[test]
    fn linear_fractions_form_distribution(
        w in prop::collection::vec(0.2f64..8.0, 1..10),
        zs in prop::collection::vec(0.0f64..3.0, 9),
    ) {
        let links = zs[..w.len() - 1].to_vec();
        let p = dls_dlt::linear::LinearParams::new(links, w).unwrap();
        let a = dls_dlt::linear::fractions(&p);
        prop_assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(a.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn linear_equal_finish_at_optimum(
        w in prop::collection::vec(0.2f64..8.0, 1..10),
        zs in prop::collection::vec(0.0f64..3.0, 9),
    ) {
        let links = zs[..w.len() - 1].to_vec();
        let p = dls_dlt::linear::LinearParams::new(links, w).unwrap();
        let a = dls_dlt::linear::fractions(&p);
        let t = dls_dlt::linear::finish_times(&p, &a);
        let spread = t.iter().cloned().fold(f64::MIN, f64::max)
            - t.iter().cloned().fold(f64::MAX, f64::min);
        prop_assert!(spread <= t[0] * 1e-9, "spread {}", spread);
    }

    #[test]
    fn linear_chain_never_beats_equal_rate_bus(
        w in prop::collection::vec(0.5f64..8.0, 2..8),
        z in 0.0f64..2.0,
    ) {
        // Per-hop forwarding can only add latency relative to a single
        // shared bus with the same rate and an FE originator.
        let chain = dls_dlt::linear::LinearParams::uniform_links(z, w.clone()).unwrap();
        let bus = BusParams::new(z, w).unwrap();
        let t_chain = dls_dlt::linear::optimal_makespan(&chain);
        let t_bus = optimal::optimal_makespan(SystemModel::NcpFe, &bus);
        prop_assert!(t_chain >= t_bus - 1e-9, "{} < {}", t_chain, t_bus);
    }

    #[test]
    fn finish_times_scale_linearly(model in arb_model(), p in arb_params(), scale in 0.1f64..3.0) {
        // T_i is linear in α: scaling the whole allocation scales all times.
        let a = optimal::fractions(model, &p);
        let scaled: Vec<f64> = a.iter().map(|x| x * scale).collect();
        let t1 = finish_times(model, &p, &a);
        let t2 = finish_times(model, &p, &scaled);
        for (x, y) in t1.iter().zip(&t2) {
            prop_assert!((y - x * scale).abs() < 1e-9 * (1.0 + x.abs()));
        }
    }
}
