//! Test-runner support: configuration, the per-test deterministic RNG and
//! the case-level error type.

/// Configuration for a `proptest!` block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Matches real proptest's default case count.
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried and does not
    /// count toward the case total.
    Reject(String),
    /// `prop_assert*!` failed; the test fails.
    Fail(String),
}

/// Deterministic splitmix64 generator, seeded from the test's fully
/// qualified name so every test draws an independent, reproducible stream.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds the RNG for the named test (FNV-1a over the name).
    pub fn deterministic(test_name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)` with 53 random bits.
    pub fn uniform_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
