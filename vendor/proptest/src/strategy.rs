//! The `Strategy` trait and combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of values of type `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// produces a final value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generates an intermediate value, builds a second strategy from it,
    /// and draws from that.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { source: self, f }
    }

    /// Retries generation until `f` accepts the value.
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            reason,
            f,
        }
    }

    /// Retries generation until `f` maps the value to `Some`.
    fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            source: self,
            reason,
            f,
        }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Copy, Debug)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// How many times filtering strategies retry before giving up. Mirrors
/// proptest's global rejection cap in spirit; hitting it panics, which
/// surfaces an over-restrictive filter instead of hanging.
const MAX_FILTER_RETRIES: u32 = 10_000;

/// See [`Strategy::prop_filter`].
#[derive(Clone, Copy, Debug)]
pub struct Filter<S, F> {
    source: S,
    reason: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_FILTER_RETRIES {
            let v = self.source.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter retry budget exhausted: {}", self.reason);
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Clone, Copy, Debug)]
pub struct FilterMap<S, F> {
    source: S,
    reason: &'static str,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..MAX_FILTER_RETRIES {
            if let Some(v) = (self.f)(self.source.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map retry budget exhausted: {}", self.reason);
    }
}

/// Weighted union of type-erased strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        let total_weight: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof requires a positive total weight");
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total_weight;
        for (w, s) in &self.arms {
            let w = *w as u64;
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total_weight");
    }
}

// ---------------------------------------------------------------------------
// String patterns as strategies
// ---------------------------------------------------------------------------

/// A `&str` is a strategy generating `String`s matching the pattern, like
/// real proptest's regex string strategies. Supported subset: literal
/// characters, character classes `[a-z0-9_]` (ranges and singletons, no
/// negation), and quantifiers `{n}`, `{m,n}`, `?`, `*`, `+` (unbounded
/// repetition capped at 8). This covers the patterns the workspace uses.
impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = self.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            // Parse one atom: a character class or a literal.
            let class: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed '[' in pattern {self:?}"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        assert!(lo <= hi, "bad range in pattern {self:?}");
                        for c in lo..=hi {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(!set.is_empty(), "empty class in pattern {self:?}");
                i = close + 1;
                set
            } else {
                let c = if chars[i] == '\\' && i + 1 < chars.len() {
                    i += 1;
                    chars[i]
                } else {
                    chars[i]
                };
                i += 1;
                vec![c]
            };
            // Parse an optional quantifier.
            let (lo, hi): (usize, usize) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed '{{' in pattern {self:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse().expect("bad quantifier"),
                        b.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            } else if i < chars.len() && (chars[i] == '*' || chars[i] == '+' || chars[i] == '?') {
                let q = chars[i];
                i += 1;
                match q {
                    '*' => (0, 8),
                    '+' => (1, 8),
                    _ => (0, 1),
                }
            } else {
                (1, 1)
            };
            assert!(lo <= hi, "bad quantifier in pattern {self:?}");
            let reps = lo + (rng.next_u64() as usize) % (hi - lo + 1);
            for _ in 0..reps {
                let pick = (rng.next_u64() as usize) % class.len();
                out.push(class[pick]);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Ranges as strategies
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($ty:ty),+) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + offset) as $ty
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128 % span) as i128;
                    (lo as i128 + offset) as $ty
                }
            }
        )+
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($ty:ty),+) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let u = rng.uniform_f64() as $ty;
                    let v = self.start + u * (self.end - self.start);
                    if v >= self.end {
                        self.start
                    } else {
                        v
                    }
                }
            }
        )+
    };
}

float_range_strategy!(f32, f64);

// ---------------------------------------------------------------------------
// Tuples of strategies
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($name:ident $idx:tt),+))+) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+
    };
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}
