//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The container has no network access, so the real crate cannot be
//! fetched. This stand-in keeps the same API shape — `proptest!`,
//! `prop_assert*!`, `prop_assume!`, `prop_oneof!`, `Strategy` and its
//! combinators, `prop::{collection, sample, num}` — with simplified
//! semantics: cases are generated from a deterministic per-test RNG
//! (seeded from the test's module path and name) and failures are *not*
//! shrunk; the failing values are reported as generated.

pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    //! `any::<T>()` and the `Arbitrary` stand-in.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical uniform generator.
    pub trait Arbitrary: Sized {
        /// Draws one value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($ty:ty),+) => {
            $(
                impl Arbitrary for $ty {
                    fn arbitrary(rng: &mut TestRng) -> Self {
                        rng.next_u64() as $ty
                    }
                }
            )+
        };
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Arbitrary for i128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            u128::arbitrary(rng) as i128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            crate::sample::Index::new(rng.next_u64())
        }
    }

    /// Strategy generating values via [`Arbitrary`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`, mirroring `proptest::prelude::any`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.saturating_sub(1),
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: a vector of `element` values with a
    /// length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    //! Sampling strategies (`select`, `Index`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An index into a runtime-sized collection, mirroring
    /// `proptest::sample::Index`.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        pub(crate) fn new(raw: u64) -> Self {
            Index(raw)
        }

        /// Maps this index into `0..len`. `len` must be non-zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    /// Strategy choosing uniformly from a fixed set of values.
    #[derive(Clone, Debug)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }

    /// `proptest::sample::select`: choose one of `options` uniformly.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }
}

pub mod num {
    //! Numeric class strategies (`f64::NORMAL`, `f64::ZERO`, …).

    #[allow(non_snake_case)]
    pub mod f64 {
        //! Strategies for `f64` values by floating-point class.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// A union of floating-point classes; `|` combines classes like the
        /// real crate's bit-flag strategies.
        #[derive(Clone, Copy, Debug)]
        pub struct FloatClasses {
            mask: u8,
        }

        const NORMAL_BIT: u8 = 1;
        const ZERO_BIT: u8 = 2;
        const SUBNORMAL_BIT: u8 = 4;
        const INFINITE_BIT: u8 = 8;

        /// Normal (full exponent range, non-zero) values.
        pub const NORMAL: FloatClasses = FloatClasses { mask: NORMAL_BIT };
        /// Positive and negative zero.
        pub const ZERO: FloatClasses = FloatClasses { mask: ZERO_BIT };
        /// Subnormal values.
        pub const SUBNORMAL: FloatClasses = FloatClasses {
            mask: SUBNORMAL_BIT,
        };
        /// Positive and negative infinity.
        pub const INFINITE: FloatClasses = FloatClasses { mask: INFINITE_BIT };

        impl std::ops::BitOr for FloatClasses {
            type Output = FloatClasses;

            fn bitor(self, rhs: FloatClasses) -> FloatClasses {
                FloatClasses {
                    mask: self.mask | rhs.mask,
                }
            }
        }

        impl Strategy for FloatClasses {
            type Value = f64;

            fn generate(&self, rng: &mut TestRng) -> f64 {
                let set: Vec<u8> = [NORMAL_BIT, ZERO_BIT, SUBNORMAL_BIT, INFINITE_BIT]
                    .into_iter()
                    .filter(|b| self.mask & b != 0)
                    .collect();
                assert!(!set.is_empty(), "empty float class mask");
                let pick = set[(rng.next_u64() % set.len() as u64) as usize];
                match pick {
                    ZERO_BIT => {
                        if rng.next_u64() & 1 == 0 {
                            0.0
                        } else {
                            -0.0
                        }
                    }
                    INFINITE_BIT => {
                        if rng.next_u64() & 1 == 0 {
                            f64::INFINITY
                        } else {
                            f64::NEG_INFINITY
                        }
                    }
                    SUBNORMAL_BIT => loop {
                        let bits = rng.next_u64() & 0x800f_ffff_ffff_ffff;
                        let x = f64::from_bits(bits);
                        if x.is_subnormal() {
                            return x;
                        }
                    },
                    _ => loop {
                        let x = f64::from_bits(rng.next_u64());
                        if x.is_normal() {
                            return x;
                        }
                    },
                }
            }
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    pub mod prop {
        //! The `prop::` namespace (`prop::collection::vec`, …).

        pub use crate::collection;
        pub use crate::num;
        pub use crate::sample;
    }
}

pub use test_runner::ProptestConfig;

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two values are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Asserts two values are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left != right, $($fmt)+);
    }};
}

/// Rejects the current case (it is retried with fresh values and does not
/// count toward the configured case total).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Weighted union of strategies, mirroring `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Property-test entry point, mirroring `proptest::proptest!`: an optional
/// `#![proptest_config(..)]` header followed by test functions whose
/// arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut successes: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = cfg.cases.saturating_mul(16).max(64);
            while successes < cfg.cases && attempts < max_attempts {
                attempts += 1;
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => successes += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case failed (attempt {} of {}): {}",
                            attempts, max_attempts, msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}
