//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The container has no network access, so the real crate cannot be
//! fetched. Bench targets keep their exact source; this stand-in gives
//! them two behaviours:
//!
//! * under `cargo bench` (the harness receives `--bench`): each benchmark
//!   is timed with a short warm-up and a fixed sample loop, and a
//!   `name: median ns/iter` line is printed;
//! * under `cargo test` (no `--bench` argument): each routine is executed
//!   exactly once so the bench code is smoke-tested without measurement,
//!   matching real criterion's test mode.

use std::time::Instant;

/// Throughput annotation (recorded, unused by the stand-in reporter).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier with a function name and a parameter, as `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a printable benchmark id (accepts `&str`, `String`,
/// [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Renders the id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    mode: Mode,
    /// Median ns/iter recorded by the last `iter` call (test mode: 0).
    last_ns: u128,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// `cargo bench`: measure.
    Measure { sample_size: usize },
    /// `cargo test`: run the routine once, no measurement.
    Smoke,
}

impl Bencher {
    /// Times `routine`, mirroring `criterion::Bencher::iter`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::Smoke => {
                std::hint::black_box(routine());
                self.last_ns = 0;
            }
            Mode::Measure { sample_size } => {
                // Short warm-up, then `sample_size` timed samples; report
                // the median to shrug off scheduler noise.
                std::hint::black_box(routine());
                let mut samples: Vec<u128> = (0..sample_size)
                    .map(|_| {
                        let start = Instant::now();
                        std::hint::black_box(routine());
                        start.elapsed().as_nanos()
                    })
                    .collect();
                samples.sort_unstable();
                self.last_ns = samples[samples.len() / 2];
            }
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Records the group's throughput annotation (accepted, unused).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mode = if self.criterion.measure {
            Mode::Measure {
                sample_size: self.sample_size.min(10),
            }
        } else {
            Mode::Smoke
        };
        let mut bencher = Bencher { mode, last_ns: 0 };
        f(&mut bencher);
        if self.criterion.measure {
            println!("{}/{}: {} ns/iter (median)", self.name, id, bencher.last_ns);
        }
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into_id(), f);
        self
    }

    /// Benchmarks `f` under `id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into_id(), |b| f(b, input));
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// The benchmark manager, mirroring `criterion::Criterion`.
pub struct Criterion {
    measure: bool,
}

impl Default for Criterion {
    /// Detects the invocation mode: `cargo bench` passes `--bench` to the
    /// harness, `cargo test` does not.
    fn default() -> Self {
        Criterion {
            measure: std::env::args().any(|a| a == "--bench"),
        }
    }
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench harness entry point, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
