//! Offline stand-in for the subset of the `rand` crate API this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and `Rng::gen` for
//! `bool`/`u32`/`u64`/`f64`.
//!
//! The container this repository builds in has no network access, so the
//! real crates-io `rand` cannot be fetched. Workspace code only relies on
//! *deterministic, seedable* randomness — never on a particular stream —
//! so a splitmix64-backed generator is a faithful substitute. (The
//! workspace's own benchmark workloads already avoid `StdRng` for frozen
//! sequences precisely because `rand` documents its streams as unstable
//! across versions; see `crates/bench/src/workloads.rs`.)

/// Types that can be sampled uniformly from a random 64-bit stream.
///
/// Stand-in for `rand`'s `Standard: Distribution<T>` machinery, collapsed
/// to the one method the workspace needs.
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits, the same mapping
    /// the real crate's `Standard` distribution uses.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Minimal `Rng`: a 64-bit source plus the generic `gen` front-end.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` (uniform over its `StandardSample`
    /// mapping), mirroring `rand::Rng::gen`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring the one constructor the workspace uses.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// Deterministic 64-bit generator (splitmix64; Steele, Lea & Flood
    /// 2014). Statistically solid for test/bench workloads and stable by
    /// construction.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x: f64 = a.gen();
            let y: f64 = b.gen();
            assert_eq!(x, y);
            assert!((0.0..1.0).contains(&x));
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn works_through_mut_ref() {
        fn draw(rng: &mut impl Rng) -> u32 {
            rng.gen()
        }
        let mut r = StdRng::seed_from_u64(1);
        let _ = draw(&mut r);
    }
}
