//! Offline stand-in for the serde *serialization* surface this workspace
//! uses. The container has no network access, so the real crates-io `serde`
//! cannot be fetched; this crate re-implements the serializer side of the
//! serde data model faithfully (same trait shapes, same method set) so the
//! workspace's canonical TLV encoder (`dls-crypto::canon`) and its derived
//! `Serialize` impls behave exactly as they would on real serde.
//!
//! Deserialization is not implemented — the workspace derives `Deserialize`
//! for forward-compatibility but never calls it, so the trait here is an
//! empty marker.

pub use serde_derive::{Deserialize, Serialize};

pub mod ser;

pub use ser::{Serialize, Serializer};

/// Marker trait standing in for `serde::Deserialize`.
///
/// The workspace derives it but has no deserialization call sites; deriving
/// produces an empty impl.
pub trait Deserialize {}

pub mod de {
    //! Deserialization side — marker only (see crate docs).

    pub use super::Deserialize;
}
