//! Offline stand-in for serde's derive macros.
//!
//! The container has no network access, so `syn`/`quote` are unavailable;
//! the input item is parsed directly from the `proc_macro` token stream.
//! This is sufficient — and faithful to real `serde_derive` output — for
//! the shapes this workspace derives on: non-generic structs (named, tuple,
//! unit) and non-generic enums whose variants are unit, tuple or
//! struct-like, with no `#[serde(...)]` attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (field-by-field, same data-model calls as
/// real serde: `serialize_struct`, `serialize_unit_variant`, …).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => generate_serialize(&item).parse().expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives `serde::Deserialize`. Deserialization is unimplemented in the
/// stand-in `serde` (the workspace never deserializes), so this emits an
/// empty marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => format!("impl ::serde::Deserialize for {} {{}}", item.name)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().expect("error tokens parse")
}

// ---------------------------------------------------------------------------
// Parsed shape
// ---------------------------------------------------------------------------

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    body: Body,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Skips leading attributes (`#[...]`) and a visibility modifier
/// (`pub`, `pub(...)`) at position `i`.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then `[...]`.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {:?}", other)),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {:?}", other)),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "the offline serde_derive stand-in does not support generic type `{}`",
            name
        ));
    }

    let body = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(Fields::Named(parse_named_fields(g.stream())?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Struct(Fields::Unit),
            other => return Err(format!("unsupported struct body: {:?}", other)),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("unsupported enum body: {:?}", other)),
        },
        other => return Err(format!("cannot derive for `{}` items", other)),
    };

    Ok(Item { name, body })
}

/// Parses `name: Type, ...` field lists, returning the field names.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(tt) = tokens.get(i) else { break };
        let TokenTree::Ident(id) = tt else {
            return Err(format!("expected field name, found {:?}", tt));
        };
        names.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field, found {:?}", other)),
        }
        // Consume the type up to the next top-level comma. `<` / `>` need
        // depth tracking for types like `Vec<(K, V)>`.
        let mut angle_depth = 0i32;
        while let Some(tt) = tokens.get(i) {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(names)
}

/// Counts the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    for tt in &tokens {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => count += 1,
            _ => {}
        }
    }
    // A trailing comma (`(A, B,)`) over-counts by one.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(tt) = tokens.get(i) else { break };
        let TokenTree::Ident(id) = tt else {
            return Err(format!("expected variant name, found {:?}", tt));
        };
        let name = id.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            return Err(format!(
                "explicit discriminants are unsupported (variant `{}`)",
                name
            ));
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation (rendered as source text, then re-parsed)
// ---------------------------------------------------------------------------

fn generate_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(Fields::Named(fields)) => {
            let mut code = String::from("use ::serde::ser::SerializeStruct as _;\n");
            code.push_str(&format!(
                "let mut st = serializer.serialize_struct({:?}, {})?;\n",
                name,
                fields.len()
            ));
            for f in fields {
                code.push_str(&format!("st.serialize_field({:?}, &self.{})?;\n", f, f));
            }
            code.push_str("st.end()\n");
            code
        }
        Body::Struct(Fields::Tuple(n)) => {
            let mut code = String::from("use ::serde::ser::SerializeTupleStruct as _;\n");
            code.push_str(&format!(
                "let mut st = serializer.serialize_tuple_struct({:?}, {})?;\n",
                name, n
            ));
            for idx in 0..*n {
                code.push_str(&format!("st.serialize_field(&self.{})?;\n", idx));
            }
            code.push_str("st.end()\n");
            code
        }
        Body::Struct(Fields::Unit) => {
            format!("serializer.serialize_unit_struct({:?})\n", name)
        }
        Body::Enum(variants) => {
            let mut code = String::from(
                "use ::serde::ser::{SerializeStructVariant as _, SerializeTupleVariant as _};\n\
                 match self {\n",
            );
            for (index, v) in variants.iter().enumerate() {
                match &v.fields {
                    Fields::Unit => {
                        code.push_str(&format!(
                            "{}::{} => serializer.serialize_unit_variant({:?}, {}u32, {:?}),\n",
                            name, v.name, name, index, v.name
                        ));
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("f{}", k)).collect();
                        code.push_str(&format!(
                            "{}::{}({}) => {{\n",
                            name,
                            v.name,
                            binds.join(", ")
                        ));
                        code.push_str(&format!(
                            "let mut sv = serializer.serialize_tuple_variant({:?}, {}u32, {:?}, {})?;\n",
                            name, index, v.name, n
                        ));
                        for b in &binds {
                            code.push_str(&format!("sv.serialize_field({})?;\n", b));
                        }
                        code.push_str("sv.end()\n}\n");
                    }
                    Fields::Named(fields) => {
                        code.push_str(&format!(
                            "{}::{} {{ {} }} => {{\n",
                            name,
                            v.name,
                            fields.join(", ")
                        ));
                        code.push_str(&format!(
                            "let mut sv = serializer.serialize_struct_variant({:?}, {}u32, {:?}, {})?;\n",
                            name, index, v.name, fields.len()
                        ));
                        for f in fields {
                            code.push_str(&format!("sv.serialize_field({:?}, {})?;\n", f, f));
                        }
                        code.push_str("sv.end()\n}\n");
                    }
                }
            }
            code.push_str("}\n");
            code
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {} {{\n\
         fn serialize<S: ::serde::Serializer>(&self, serializer: S) \
         -> ::std::result::Result<S::Ok, S::Error> {{\n{}\n}}\n}}\n",
        name, body
    )
}
