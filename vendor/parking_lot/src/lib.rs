//! Offline stand-in for the subset of `parking_lot` this workspace uses:
//! `Mutex` (with `const fn new` and non-poisoning `lock`) and `Condvar`
//! (`wait` on `&mut MutexGuard`, `notify_all`/`notify_one`).
//!
//! Built on `std::sync` primitives; poisoning is swallowed exactly like
//! `parking_lot` (a panicking critical section does not wedge the lock).

use std::ops::{Deref, DerefMut};
use std::sync;

/// Non-poisoning mutex with `parking_lot`'s construction/locking surface.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates the mutex (usable in `static` initializers, like the real
    /// crate's `const fn new`).
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner `std` guard lives in an `Option` so [`Condvar::wait`] can take
/// it by value (std's `wait` consumes the guard) and put it back, while the
/// public API matches `parking_lot`'s `wait(&mut guard)`.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard invariant")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard invariant")
    }
}

/// Condition variable matching `parking_lot`'s `wait(&mut guard)` shape.
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates the condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing `guard`'s lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard invariant");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(0usize), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            *g += 1;
            cv.notify_all();
        });
        {
            let (m, cv) = &*pair;
            let mut g = m.lock();
            while *g == 0 {
                cv.wait(&mut g);
            }
            assert_eq!(*g, 1);
        }
        handle.join().unwrap();
    }

    #[test]
    fn static_mutex_initializer() {
        static CELL: Mutex<Option<u32>> = Mutex::new(None);
        *CELL.lock() = Some(5);
        assert_eq!(*CELL.lock(), Some(5));
    }
}
