//! Offline stand-in for the subset of `parking_lot` this workspace uses:
//! `Mutex` (with `const fn new` and non-poisoning `lock`) and `Condvar`
//! (`wait`/`wait_for` on `&mut MutexGuard`, `notify_all`/`notify_one`).
//!
//! Built on `std::sync` primitives; poisoning is swallowed exactly like
//! `parking_lot` (a panicking critical section does not wedge the lock).

use std::ops::{Deref, DerefMut};
use std::sync;

/// Non-poisoning mutex with `parking_lot`'s construction/locking surface.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates the mutex (usable in `static` initializers, like the real
    /// crate's `const fn new`).
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner `std` guard lives in an `Option` so [`Condvar::wait`] can take
/// it by value (std's `wait` consumes the guard) and put it back, while the
/// public API matches `parking_lot`'s `wait(&mut guard)`.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard invariant")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard invariant")
    }
}

/// Condition variable matching `parking_lot`'s `wait(&mut guard)` shape.
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates the condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing `guard`'s lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard invariant");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Blocks until notified or until `timeout` elapses, releasing
    /// `guard`'s lock while waiting. Returns a [`WaitTimeoutResult`]
    /// matching `parking_lot`'s shape (`timed_out()` is `true` when the
    /// wait ended because the timeout elapsed).
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard invariant");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => {
                let (g, r) = poisoned.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Result of a timed wait: whether the timeout elapsed before a
/// notification arrived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` when the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(0usize), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            *g += 1;
            cv.notify_all();
        });
        {
            let (m, cv) = &*pair;
            let mut g = m.lock();
            while *g == 0 {
                cv.wait(&mut g);
            }
            assert_eq!(*g, 1);
        }
        handle.join().unwrap();
    }

    #[test]
    fn wait_for_times_out_without_notification() {
        let m = Mutex::new(0u32);
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, std::time::Duration::from_millis(10));
        assert!(r.timed_out());
        assert_eq!(*g, 0, "the guard is still usable after a timeout");
    }

    #[test]
    fn wait_for_wakes_on_notification() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            let r = cv.wait_for(&mut g, std::time::Duration::from_secs(5));
            if r.timed_out() {
                break;
            }
        }
        assert!(*g, "the notification arrived before the 5s timeout");
        handle.join().unwrap();
    }

    #[test]
    fn static_mutex_initializer() {
        static CELL: Mutex<Option<u32>> = Mutex::new(None);
        *CELL.lock() = Some(5);
        assert_eq!(*CELL.lock(), Some(5));
    }
}
