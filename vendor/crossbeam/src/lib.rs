//! Offline stand-in for the subset of `crossbeam` this workspace uses:
//! `channel::{unbounded, Sender, Receiver}` with `send`, `try_iter` and
//! cloning. Backed by a `Mutex<VecDeque>`; FIFO semantics match the real
//! unbounded MPMC channel for the workspace's drain-style usage.

pub mod channel {
    //! Unbounded MPMC channel.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Mutex, PoisonError};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.queue.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Error returned by [`Sender::send`] (never produced here: the channel
    /// has no disconnect detection, matching how the workspace ignores
    /// send results on teardown).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Producer half.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.shared.lock().push_back(msg);
            Ok(())
        }
    }

    /// Consumer half.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Iterator over currently-queued messages without blocking. Lazy,
        /// like the real crate: each `next()` pops one message, so dropping
        /// the iterator early leaves the rest queued.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }
    }

    /// Iterator over currently-available messages (see
    /// [`Receiver::try_iter`]).
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.shared.lock().pop_front()
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::unbounded;

        #[test]
        fn fifo_and_drain() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.clone().send(2).unwrap();
            assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![1, 2]);
            assert!(rx.try_iter().next().is_none());
            tx.send(3).unwrap();
            assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![3]);
        }
    }
}
