//! Shared helpers for the example binaries live in the binaries themselves;
//! this crate exists to host the `src/bin/*.rs` examples as a workspace member.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
