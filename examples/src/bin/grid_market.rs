//! Grid market: a volunteer-computing scenario in which autonomous
//! organizations offer compute over a shared bus. One org probes whether
//! lying about its speed could ever pay, sweeping its reported bid across
//! ×0.25…×4 of the truth and also trying to stall during execution.
//!
//! The output is the utility curve behind experiment E6: the maximum sits
//! at the truthful bid for every agent (Theorem 5.2).
//!
//! ```text
//! cargo run -p dls-examples --bin grid_market
//! ```

use dls::mechanism::validate::{default_bid_factors, default_exec_factors, sweep_strategyproof};
use dls::SystemModel;

fn main() {
    // Five organizations with heterogeneous hardware.
    let w = [0.8, 1.1, 1.7, 2.4, 3.5];
    let z = 0.3;
    let model = SystemModel::NcpFe;

    println!("market: m = {}, z = {z}, model = {model}", w.len());
    println!("strategy space probed: bid ×{{0.25…4}} × exec ×{{1…4}}\n");

    for agent in 0..w.len() {
        let report = sweep_strategyproof(
            model,
            z,
            &w,
            agent,
            &default_bid_factors(),
            &default_exec_factors(),
        )
        .unwrap();
        println!(
            "P{} (w = {}): truthful U = {:+.5}",
            agent + 1,
            w[agent],
            report.truthful_utility
        );
        // Utility as a function of the bid factor at full-speed execution.
        for p in report
            .probes
            .iter()
            .filter(|p| p.exec_factor == 1.0)
        {
            let bar_len = ((p.utility / report.truthful_utility).max(0.0) * 40.0) as usize;
            println!(
                "   bid ×{:<5} U = {:+.5} {}{}",
                p.bid_factor,
                p.utility,
                "#".repeat(bar_len.min(60)),
                if p.bid_factor == 1.0 { "  <- truth" } else { "" }
            );
        }
        assert!(
            report.holds(1e-9),
            "P{} found a profitable deviation!",
            agent + 1
        );
        println!(
            "   best deviation gains {:+.2e} -> strategyproof\n",
            report.max_gain()
        );
    }
    println!("No probed deviation beats truth-telling for any organization.");
}
