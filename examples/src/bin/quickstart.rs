//! Quickstart: schedule a divisible load across four strategic processors
//! on a bus without a control processor, run the full DLS-BL-NCP protocol
//! and print the allocation, the realized timeline and the payments.
//!
//! ```text
//! cargo run -p dls-examples --bin quickstart
//! ```

use dls::{quick, Session, SystemModel};

fn main() {
    let z = 0.2; // bus: time to move one unit of load
    let rates = [1.0, 1.6, 2.2, 3.0]; // w_i: time to compute one unit

    // --- Pure DLT: what is the optimal schedule? ---------------------------
    let alloc = quick::allocate(SystemModel::NcpFe, z, &rates).unwrap();
    let makespan = quick::makespan(SystemModel::NcpFe, z, &rates).unwrap();
    println!("Optimal allocation (Algorithm 2.1, NCP-FE):");
    for (i, a) in alloc.iter().enumerate() {
        println!("  P{}: α = {a:.4}  (w = {})", i + 1, rates[i]);
    }
    println!("Optimal makespan: {makespan:.4}\n");
    println!("{}", quick::gantt(SystemModel::NcpFe, z, &rates).unwrap());

    // --- The full strategyproof protocol -----------------------------------
    let outcome = Session::ncp_fe(z)
        .worker(rates[0])
        .worker(rates[1])
        .worker(rates[2])
        .worker(rates[3])
        .seed(2024)
        .run()
        .unwrap();

    println!("\nDLS-BL-NCP session: {:?}", outcome.status);
    println!(
        "messages: {} ({} bytes)",
        outcome.messages.total_messages(),
        outcome.messages.total_bytes()
    );
    println!("{:<6}{:>8}{:>10}{:>12}{:>12}{:>12}", "proc", "bid", "blocks", "comp", "bonus", "utility");
    for (i, p) in outcome.processors.iter().enumerate() {
        let q = p.payment.expect("completed session");
        println!(
            "{:<6}{:>8.2}{:>10}{:>12.4}{:>12.4}{:>12.4}",
            format!("P{}", i + 1),
            p.bid.unwrap(),
            p.blocks_granted,
            q.compensation,
            q.bonus,
            p.utility
        );
    }
    println!(
        "\nrealized makespan: {:.4} (optimal {makespan:.4})",
        outcome.makespan.unwrap()
    );
    println!(
        "ledger conservation error: {:.2e}",
        outcome.ledger.conservation_error()
    );
}
