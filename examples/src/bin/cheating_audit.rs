//! Cheating audit: run one session per deviant behaviour in the catalogue
//! and show that every protocol offence is detected, fined and rendered
//! unprofitable (Lemmas 5.1–5.2, Theorem 5.1), while legal-but-strategic
//! manipulations (misreporting, slacking) are punished by the mechanism
//! itself.
//!
//! ```text
//! cargo run -p dls-examples --bin cheating_audit
//! ```

use dls::protocol::config::{Behavior, ProcessorConfig, SessionConfig};
use dls::protocol::runtime::run_session;
use dls::{SessionStatus, SystemModel};

fn run_with(deviant: usize, behavior: Behavior) -> (SessionStatus, Vec<usize>, f64) {
    let base = [1.0, 2.0, 3.0];
    let cfg = SessionConfig::builder(SystemModel::NcpFe, 0.2)
        .processors(base.iter().enumerate().map(|(i, &w)| {
            ProcessorConfig::new(w, if i == deviant { behavior } else { Behavior::Compliant })
        }))
        .seed(11)
        .build()
        .unwrap();
    let out = run_session(&cfg).unwrap();
    (out.status.clone(), out.fined_processors(), out.utility(deviant))
}

fn main() {
    let honest_utils: Vec<f64> = {
        let cfg = SessionConfig::builder(SystemModel::NcpFe, 0.2)
            .processors([1.0, 2.0, 3.0].iter().map(|&w| ProcessorConfig::new(w, Behavior::Compliant)))
            .seed(11)
            .build()
            .unwrap();
        let out = run_session(&cfg).unwrap();
        (0..3).map(|i| out.utility(i)).collect()
    };

    println!(
        "{:<28}{:<10}{:<26}{:>10}{:>10}{:>8}",
        "behaviour (deviant)", "deviant", "status", "U(dev)", "U(honest)", "pays?"
    );
    let catalogue: Vec<(usize, Behavior)> = vec![
        (1, Behavior::Misreport { factor: 1.5 }),
        (1, Behavior::Slack { factor: 2.0 }),
        (1, Behavior::EquivocateBids { factor: 2.0 }),
        (0, Behavior::ShortAllocate { victim: 2, shortfall: 2 }),
        (0, Behavior::OverAllocate { victim: 1, excess: 3 }),
        (2, Behavior::CorruptPayments { target: 2, factor: 2.0 }),
        (1, Behavior::FalselyAccuseAllocation),
    ];
    for (who, behavior) in catalogue {
        let (status, fined, u_dev) = run_with(who, behavior);
        let status_str = match &status {
            SessionStatus::Completed => "completed".to_string(),
            SessionStatus::CompletedWithFines => "completed-with-fines".to_string(),
            SessionStatus::Aborted { phase } => format!("aborted@{phase:?}"),
        };
        let pays = if u_dev < honest_utils[who] { "yes" } else { "NO!" };
        println!(
            "{:<28}{:<10}{:<26}{:>10.4}{:>10.4}{:>8}",
            behavior.to_string(),
            format!("P{}", who + 1),
            status_str,
            u_dev,
            honest_utils[who],
            pays
        );
        if behavior.is_finable_offence() {
            assert_eq!(fined, vec![who], "offence must fine exactly the deviant");
        } else {
            assert!(fined.is_empty(), "legal strategies must not be fined");
        }
    }
    println!("\nEvery deviation costs the deviant relative to compliance — Theorem 5.1 holds.");
}
