//! Network comparison: the three bus-system models of §2 side by side —
//! regenerating the timing diagrams of Figures 1–3 for one scenario and
//! sweeping the communication rate to show where each architecture's
//! makespan lands and how speedup collapses as the bus saturates.
//!
//! ```text
//! cargo run -p dls-examples --bin network_comparison
//! ```

use dls::dlt::{diagnostics, optimal, BusParams, ALL_MODELS};
use dls::netsim::{gantt, simulate, SessionSpec};

fn main() {
    let w = vec![1.0, 1.5, 2.0, 2.5, 3.0];
    let z = 0.2;

    // --- Figures 1-3: execution timing diagrams ----------------------------
    for model in ALL_MODELS {
        let params = BusParams::new(z, w.clone()).unwrap();
        let alloc = optimal::fractions(model, &params);
        let tl = simulate(&SessionSpec::new(model, params, alloc));
        println!("=== {model} (makespan {:.4}) ===", tl.makespan);
        println!("{}", gantt::render_default(&tl));
    }

    // --- Makespan vs communication rate -------------------------------------
    println!("\nOptimal makespan vs z (w = {w:?}):");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>10}",
        "z", "CP", "NCP-FE", "NCP-NFE", "speedup(FE)"
    );
    for k in 0..=10 {
        let z = 0.05 * k as f64;
        let params = BusParams::new(z, w.clone()).unwrap();
        let mk: Vec<f64> = ALL_MODELS
            .iter()
            .map(|&m| optimal::optimal_makespan(m, &params))
            .collect();
        println!(
            "{:>6.2} {:>12.4} {:>12.4} {:>12.4} {:>10.2}",
            z,
            mk[0],
            mk[1],
            mk[2],
            diagnostics::speedup(dls::SystemModel::NcpFe, &params)
        );
    }
    println!("\nNCP-FE always wins (the originator computes for free while it sends);");
    println!("CP always pays the extra bus transfer of the first fraction.");
}
