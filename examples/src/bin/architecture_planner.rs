//! Architecture planner: given a pool of processors and a communication
//! rate, compare every scheduling architecture this workspace implements —
//! the three bus models of the paper, the linear daisy-chain extension, and
//! the multi-installment pipeline — and report which one finishes the load
//! first.
//!
//! ```text
//! cargo run -p dls-examples --bin architecture_planner
//! cargo run -p dls-examples --bin architecture_planner -- 0.4 1.0 1.2 2.0 3.5
//! ```

use dls::dlt::{linear, optimal, BusParams, ALL_MODELS};
use dls::netsim::multiround::simulate_multiround;

fn main() {
    // z followed by processor rates, or a default scenario.
    let args: Vec<f64> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("numeric arguments: z w1 w2 ..."))
        .collect();
    let (z, w) = if args.len() >= 3 {
        (args[0], args[1..].to_vec())
    } else {
        (0.25, vec![1.0, 1.4, 1.9, 2.6, 3.2])
    };
    println!("planning for z = {z}, w = {w:?}\n");

    let bus = BusParams::new(z, w.clone()).unwrap();
    let solo = w.iter().cloned().fold(f64::INFINITY, f64::min);

    let mut options: Vec<(String, f64)> = Vec::new();
    options.push(("fastest processor alone".into(), solo));
    for model in ALL_MODELS {
        options.push((
            format!("{model} (single round)"),
            optimal::optimal_makespan(model, &bus),
        ));
    }
    let chain = linear::LinearParams::uniform_links(z, w.clone()).unwrap();
    options.push((
        "linear daisy chain (store-and-forward)".into(),
        linear::optimal_makespan(&chain),
    ));
    for r in [2usize, 4, 8] {
        options.push((
            format!("BUS-LINEAR-CP, {r} installments"),
            simulate_multiround(&bus, r).expect("rounds >= 1").makespan,
        ));
    }

    options.sort_by(|a, b| a.1.total_cmp(&b.1));
    println!("{:<44} {:>10} {:>10}", "architecture", "makespan", "speedup");
    for (name, t) in &options {
        println!("{name:<44} {t:>10.4} {:>10.2}", solo / t);
    }
    println!(
        "\nbest: {} ({:.4})",
        options[0].0, options[0].1
    );
    if !bus.in_dlt_regime() {
        println!(
            "warning: z >= min(w): outside the classical DLT regime — distributing\n\
             load may not beat local computation (see DESIGN.md)."
        );
    }
}
