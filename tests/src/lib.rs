//! This crate exists to host integration tests spanning the workspace crates
//! (see the `tests/` directory of this package).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
