//! Structural snapshot tests for the regenerated Figures 1–3: the Gantt
//! output must exhibit exactly the qualitative features the paper's
//! diagrams show.

use dls::dlt::{optimal, BusParams, SystemModel};
use dls::netsim::{gantt, simulate, SessionSpec};

fn figure(model: SystemModel) -> (String, Vec<f64>) {
    let params = BusParams::new(0.2, vec![1.0, 1.5, 2.0, 2.5, 3.0]).unwrap();
    let alloc = optimal::fractions(model, &params);
    let tl = simulate(&SessionSpec::new(model, params, alloc));
    (gantt::render_default(&tl), tl.finish_times())
}

fn bar_end(line: &str) -> usize {
    line.rfind(['#', '|']).unwrap_or(0)
}

#[test]
fn figure1_cp_structure() {
    let (g, finish) = figure(SystemModel::Cp);
    let lines: Vec<&str> = g.lines().collect();
    let comm = lines[0];
    // All five fractions cross the bus, in order a1..a5.
    for i in 1..=5 {
        assert!(comm.contains(&format!("a{i}")), "a{i} missing:\n{g}");
    }
    let positions: Vec<usize> = (1..=5)
        .map(|i| comm.find(&format!("a{i}")).unwrap())
        .collect();
    assert!(positions.windows(2).all(|w| w[0] < w[1]), "bus order a1..a5");
    // No worker computes from t=0 (everyone waits for its transfer).
    for line in &lines[1..6] {
        let first_mark = line.find('|').unwrap();
        assert!(first_mark > 8, "CP worker starts late: {line:?}");
    }
    // Simultaneous finish (Theorem 2.1) — all bars end at the same column.
    let ends: Vec<usize> = lines[1..6].iter().map(|l| bar_end(l)).collect();
    assert!(ends.iter().all(|&e| e.abs_diff(ends[0]) <= 1), "{ends:?}");
    let spread = finish.iter().cloned().fold(f64::MIN, f64::max)
        - finish.iter().cloned().fold(f64::MAX, f64::min);
    assert!(spread < 1e-12);
}

#[test]
fn figure2_ncp_fe_structure() {
    let (g, _) = figure(SystemModel::NcpFe);
    let lines: Vec<&str> = g.lines().collect();
    let comm = lines[0];
    // The originator's fraction never crosses the bus: first transfer is a2.
    assert!(!comm.contains("a1"), "a1 must not appear:\n{g}");
    assert!(comm.contains("a2") && comm.contains("a5"));
    // P1 computes from the left edge (front end).
    let p1 = lines[1];
    assert!(p1.find('|').unwrap() <= 6, "P1 should start at t=0: {p1:?}");
    // Everyone still finishes together.
    let ends: Vec<usize> = lines[1..6].iter().map(|l| bar_end(l)).collect();
    assert!(ends.iter().all(|&e| e.abs_diff(ends[0]) <= 1), "{ends:?}");
}

#[test]
fn figure3_ncp_nfe_structure() {
    let (g, _) = figure(SystemModel::NcpNfe);
    let lines: Vec<&str> = g.lines().collect();
    let comm = lines[0];
    // P5 is the originator: transfers a1..a4 only.
    assert!(comm.contains("a1") && comm.contains("a4"));
    assert!(!comm.contains("a5"), "a5 must not appear:\n{g}");
    // P5 computes only after the last send: its bar starts where the comm
    // row ends.
    let comm_end = bar_end(comm);
    let p5_start = lines[5].find('|').unwrap();
    assert!(
        p5_start.abs_diff(comm_end) <= 1,
        "P5 starts at {p5_start}, comm ends at {comm_end}:\n{g}"
    );
    let ends: Vec<usize> = lines[1..6].iter().map(|l| bar_end(l)).collect();
    assert!(ends.iter().all(|&e| e.abs_diff(ends[0]) <= 1), "{ends:?}");
}

#[test]
fn cp_is_strictly_slower_than_ncp_fe_on_the_figure_scenario() {
    // Visible in the figures: the CP diagram is wider (0.4765 vs 0.3971).
    let p = BusParams::new(0.2, vec![1.0, 1.5, 2.0, 2.5, 3.0]).unwrap();
    let t_cp = optimal::optimal_makespan(SystemModel::Cp, &p);
    let t_fe = optimal::optimal_makespan(SystemModel::NcpFe, &p);
    let t_nfe = optimal::optimal_makespan(SystemModel::NcpNfe, &p);
    assert!(t_fe < t_nfe && t_nfe < t_cp, "{t_fe} < {t_nfe} < {t_cp}");
}
