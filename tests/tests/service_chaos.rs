//! Service-chaos suite: deterministic fault injection against the
//! supervised session service ([`dls_protocol::ServiceHandle`]).
//!
//! The invariant under test everywhere: **no accepted ticket is ever
//! lost**. Whatever the [`dls_protocol::ServiceFaultPlan`] does — kill
//! workers mid-job, fail spawns, panic the session driver, wedge a
//! worker — every `Ok` ticket from `submit` resolves to a `Completed`,
//! and every outcome that resolves successfully is bit-identical to a
//! direct [`dls_protocol::run_session_vm`] solve (per-session virtual
//! time makes replay after a kill or confiscation exact, not merely
//! approximate).
//!
//! Overload behavior is exercised by wedging a single worker with
//! [`dls_protocol::ServiceFault::StallWorker`] (supervision off, so the
//! wedge holds) and driving the admission gate to its capacity bound:
//! `Reject` refuses with a typed error, `Block` times out with a typed
//! error, `ShedOldest` evicts the oldest queued ticket into a typed
//! `Shed` outcome — refusals are observable, never silent.

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use dls_dlt::SystemModel;
use dls_protocol::config::{Behavior, ProcessorConfig, SessionConfig};
use dls_protocol::service::{
    AdmissionPolicy, Placement, ServiceConfig, ServiceError, ServiceHandle, SubmitError,
};
use dls_protocol::supervisor::{ServiceFault, ServiceFaultPlan};
use dls_protocol::run_session_vm;

const Z: f64 = 0.25;
const W: [f64; 3] = [1.0, 1.7, 2.4];

/// A small compliant session; `seed` varies the bid draw so a misrouted
/// or cross-published outcome cannot match its oracle by accident.
fn session(seed: u64) -> SessionConfig {
    let mut b = SessionConfig::builder(SystemModel::NcpFe, Z)
        .seed(seed)
        .blocks(8)
        .phase_budget_ms(400);
    for &w in &W {
        b = b.processor(ProcessorConfig::new(w, Behavior::Compliant));
    }
    b.build().expect("chaos config must be builder-valid")
}

/// Waits for `ticket` and asserts its outcome is bit-identical to the
/// direct virtual-time solve of `cfg`.
fn assert_resolves_bit_exact(svc: &ServiceHandle, ticket: u64, cfg: &SessionConfig, what: &str) {
    let done = svc
        .wait(ticket)
        .unwrap_or_else(|| panic!("{what}: accepted ticket {ticket} was lost"));
    let got = done
        .outcome
        .unwrap_or_else(|e| panic!("{what}: ticket {ticket} failed: {e}"));
    let oracle = run_session_vm(cfg).unwrap_or_else(|e| panic!("{what}: vm failed: {e}"));
    assert_eq!(
        format!("{oracle:?}"),
        format!("{got:?}"),
        "{what}: ticket {ticket} diverged from the vm oracle"
    );
}

/// Spins (bounded) until `ready` holds; panics with `what` on timeout.
fn poll_until(ready: impl Fn() -> bool, what: &str) {
    let t0 = Instant::now();
    while !ready() {
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "timed out waiting for {what}"
        );
        thread::sleep(Duration::from_millis(2));
    }
}

/// Starts a one-worker, unsupervised service whose worker wedges on its
/// first job, submits that job, and confirms the wedge took hold. The
/// returned wedge ticket still resolves at shutdown (the stop-side drain
/// confiscates and re-runs it inline).
fn wedged_service(queue_capacity: usize, admission: AdmissionPolicy) -> (ServiceHandle, u64) {
    let svc = ServiceHandle::start(ServiceConfig {
        supervise: false,
        queue_capacity: Some(queue_capacity),
        admission,
        fault_plan: ServiceFaultPlan::default().with(ServiceFault::StallWorker { nth_job: 0 }),
        ..ServiceConfig::stealing(1)
    })
    .expect("service start");
    let wedge = svc.submit(session(1000)).expect("wedge submit");
    poll_until(|| svc.stats().stalled == 1, "the worker to wedge");
    (svc, wedge)
}

// --- Kill-churn --------------------------------------------------------

#[test]
fn kill_churn_loses_no_ticket_and_stays_bit_exact() {
    for placement in [Placement::Stealing, Placement::StaticShard] {
        let n: u64 = 12;
        let svc = ServiceHandle::start(ServiceConfig {
            placement,
            // Kill the active worker at every 3rd job start.
            fault_plan: ServiceFaultPlan::kill_every(3, n),
            ..ServiceConfig::stealing(3)
        })
        .expect("service start");
        let cfgs: Vec<SessionConfig> = (0..n).map(session).collect();
        let tickets: Vec<u64> = cfgs
            .iter()
            .map(|c| svc.submit(c.clone()).expect("submit refused"))
            .collect();
        for (t, c) in tickets.iter().zip(&cfgs) {
            assert_resolves_bit_exact(&svc, *t, c, &format!("kill-churn/{placement:?}"));
        }
        let stats = svc.stats();
        assert!(
            stats.killed >= 2,
            "{placement:?}: the plan must actually kill workers (killed={})",
            stats.killed
        );
        assert!(
            stats.orphans_requeued >= 1,
            "{placement:?}: a mid-job kill must orphan at least one job"
        );
        assert!(
            stats.respawns >= 1,
            "{placement:?}: the supervisor must respawn killed workers"
        );
        svc.shutdown();
    }
}

#[test]
fn static_shard_drains_after_respawn_without_shutdown_help() {
    // All waits complete while the service is live, so the recovery is
    // the supervisor's doing — not the shutdown drain's.
    let svc = ServiceHandle::start(ServiceConfig {
        fault_plan: ServiceFaultPlan::default().with(ServiceFault::KillWorkerAtJob { nth_job: 0 }),
        ..ServiceConfig::static_shard(2)
    })
    .expect("service start");
    let cfgs: Vec<SessionConfig> = (0..6).map(session).collect();
    let tickets: Vec<u64> = cfgs
        .iter()
        .map(|c| svc.submit(c.clone()).expect("submit refused"))
        .collect();
    for (t, c) in tickets.iter().zip(&cfgs) {
        assert_resolves_bit_exact(&svc, *t, c, "static-shard-respawn");
    }
    let stats = svc.stats();
    assert_eq!(stats.killed, 1);
    assert!(stats.respawns >= 1, "supervisor must heal the killed shard");
    svc.shutdown();
}

#[test]
fn respawned_worker_killed_on_first_job_is_healed_again() {
    // With one worker, each respawn's very first popped job is another
    // kill: the death lands while (or before) the supervisor's spawn
    // bookkeeping runs. The slot must come back sweepable every time —
    // a death stamp erased by stale post-spawn bookkeeping would leave
    // the slot "alive" with no thread and strand the whole queue.
    let kills = 3u64;
    let mut plan = ServiceFaultPlan::default();
    for n in 0..kills {
        plan = plan.with(ServiceFault::KillWorkerAtJob { nth_job: n });
    }
    let svc = ServiceHandle::start(ServiceConfig {
        tick: Duration::from_millis(1),
        fault_plan: plan,
        ..ServiceConfig::stealing(1)
    })
    .expect("service start");
    let cfgs: Vec<SessionConfig> = (0..4).map(|s| session(500 + s)).collect();
    let tickets: Vec<u64> = cfgs
        .iter()
        .map(|c| svc.submit(c.clone()).expect("submit refused"))
        .collect();
    for (t, c) in tickets.iter().zip(&cfgs) {
        assert_resolves_bit_exact(&svc, *t, c, "back-to-back-kills");
    }
    let stats = svc.stats();
    assert_eq!(stats.killed, kills, "every planned kill must fire");
    assert!(
        stats.respawns >= kills,
        "each killed occupant must be respawned (respawns={})",
        stats.respawns
    );
    svc.shutdown();
}

// --- Stall detection ---------------------------------------------------

#[test]
fn stalled_worker_is_confiscated_and_the_job_reruns_elsewhere() {
    let svc = ServiceHandle::start(ServiceConfig {
        tick: Duration::from_millis(5),
        stall_ticks: 2,
        fault_plan: ServiceFaultPlan::default().with(ServiceFault::StallWorker { nth_job: 0 }),
        ..ServiceConfig::stealing(2)
    })
    .expect("service start");
    let cfgs: Vec<SessionConfig> = (0..4).map(session).collect();
    let tickets: Vec<u64> = cfgs
        .iter()
        .map(|c| svc.submit(c.clone()).expect("submit refused"))
        .collect();
    // Every ticket — including the one held by the wedged worker — must
    // resolve while the service is live: the supervisor declares the
    // silent worker dead, confiscates its job and requeues it.
    for (t, c) in tickets.iter().zip(&cfgs) {
        assert_resolves_bit_exact(&svc, *t, c, "stall-confiscation");
    }
    let stats = svc.stats();
    assert_eq!(stats.stalled, 1);
    assert!(
        stats.confiscated >= 1,
        "stall detection must confiscate the held job"
    );
    svc.shutdown();
}

// --- Driver panics: retry, then quarantine -----------------------------

#[test]
fn transient_driver_panic_retries_once_to_a_bit_exact_outcome() {
    let cfg = session(7);
    let svc = ServiceHandle::start(ServiceConfig {
        fault_plan: ServiceFaultPlan::default()
            .with(ServiceFault::PanicOnTicket { ticket: 0, times: 1 }),
        ..ServiceConfig::stealing(2)
    })
    .expect("service start");
    let ticket = svc.submit(cfg.clone()).expect("submit refused");
    let done = svc.wait(ticket).expect("retried ticket must resolve");
    assert_eq!(done.attempts, 2, "one panic + one clean re-run");
    let got = done.outcome.expect("retry must succeed");
    let oracle = run_session_vm(&cfg).expect("vm solve");
    assert_eq!(format!("{oracle:?}"), format!("{got:?}"));
    let stats = svc.stats();
    assert_eq!(stats.retries, 1);
    assert_eq!(stats.quarantined, 0);
    svc.shutdown();
}

#[test]
fn repeated_driver_panic_quarantines_as_poison() {
    let svc = ServiceHandle::start(ServiceConfig {
        fault_plan: ServiceFaultPlan::default()
            .with(ServiceFault::PanicOnTicket { ticket: 0, times: 2 }),
        ..ServiceConfig::stealing(2)
    })
    .expect("service start");
    let poison = svc.submit(session(8)).expect("submit refused");
    let healthy = svc.submit(session(9)).expect("submit refused");

    let done = svc.wait(poison).expect("poison ticket must still resolve");
    assert_eq!(done.attempts, 2, "quarantine happens on the second panic");
    match done.outcome {
        Err(ServiceError::Quarantined { attempts, .. }) => assert_eq!(attempts, 2),
        other => panic!("expected a quarantine, got {other:?}"),
    }
    // The pool survives the poison job: healthy work still completes.
    let cfg = session(9);
    assert_resolves_bit_exact(&svc, healthy, &cfg, "post-quarantine");
    let stats = svc.stats();
    assert_eq!(stats.quarantined, 1);
    assert_eq!(stats.retries, 1, "exactly one retry before quarantine");
    svc.shutdown();
}

// --- Admission control -------------------------------------------------

#[test]
fn reject_admission_refuses_with_a_typed_overload_error() {
    let (svc, wedge) = wedged_service(2, AdmissionPolicy::Reject);
    let q1 = svc.submit(session(1)).expect("capacity 1/2");
    let q2 = svc.submit(session(2)).expect("capacity 2/2");
    match svc.submit(session(3)) {
        Err(SubmitError::Overloaded { queued, capacity }) => {
            assert_eq!((queued, capacity), (2, 2));
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    let stats = svc.stats();
    assert_eq!(stats.rejected, 1);
    // The refusal costs the refused session only; everything accepted
    // still resolves (the queued pair via the shutdown drain).
    svc.shutdown();
    for (t, seed) in [(wedge, 1000), (q1, 1), (q2, 2)] {
        assert_resolves_bit_exact(&svc, t, &session(seed), "reject-admission");
    }
}

#[test]
fn block_admission_times_out_with_a_typed_error() {
    let (svc, wedge) = wedged_service(
        1,
        AdmissionPolicy::Block {
            timeout: Duration::from_millis(100),
        },
    );
    let q1 = svc.submit(session(1)).expect("capacity 1/1");
    let t0 = Instant::now();
    match svc.submit(session(2)) {
        Err(SubmitError::AdmissionTimeout { queued, capacity }) => {
            assert_eq!((queued, capacity), (1, 1));
        }
        other => panic!("expected AdmissionTimeout, got {other:?}"),
    }
    assert!(
        t0.elapsed() >= Duration::from_millis(50),
        "Block must actually hold the submitter at the gate"
    );
    assert_eq!(svc.stats().timed_out, 1);
    svc.shutdown();
    for (t, seed) in [(wedge, 1000), (q1, 1)] {
        assert_resolves_bit_exact(&svc, t, &session(seed), "block-admission");
    }
}

#[test]
fn shed_oldest_admission_discloses_the_shed_ticket() {
    let (svc, wedge) = wedged_service(2, AdmissionPolicy::ShedOldest);
    let oldest = svc.submit(session(1)).expect("capacity 1/2");
    let kept = svc.submit(session(2)).expect("capacity 2/2");
    let newest = svc.submit(session(3)).expect("ShedOldest always admits");
    // The oldest queued ticket resolves as a typed shed outcome — while
    // the service is still live, not only at shutdown.
    let done = svc.wait(oldest).expect("shed ticket must resolve");
    match done.outcome {
        Err(ServiceError::Shed { capacity, .. }) => assert_eq!(capacity, 2),
        other => panic!("expected Shed, got {other:?}"),
    }
    assert_eq!(svc.stats().sheds, 1);
    svc.shutdown();
    for (t, seed) in [(wedge, 1000), (kept, 2), (newest, 3)] {
        assert_resolves_bit_exact(&svc, t, &session(seed), "shed-admission");
    }
}

// --- Spawn failures ----------------------------------------------------

#[test]
fn failed_spawn_shrinks_the_pool_instead_of_vanishing() {
    // Unsupervised: the failed slot stays dead, the service runs on the
    // surviving worker and reports the honest pool size. This is the
    // regression test for `start` silently discarding failed spawns.
    let svc = ServiceHandle::start(ServiceConfig {
        supervise: false,
        fault_plan: ServiceFaultPlan::default().with(ServiceFault::SpawnFailAt { attempt: 0 }),
        ..ServiceConfig::static_shard(2)
    })
    .expect("one surviving worker is enough to start");
    assert_eq!(svc.workers(), 1, "workers() must report the shrunk pool");
    assert_eq!(svc.stats().spawn_failures, 1);
    let cfgs: Vec<SessionConfig> = (0..4).map(session).collect();
    let tickets: Vec<u64> = cfgs
        .iter()
        .map(|c| svc.submit(c.clone()).expect("submit refused"))
        .collect();
    // Static placement probes past the dead slot, so the half-pool still
    // drains every shard while live.
    for (t, c) in tickets.iter().zip(&cfgs) {
        assert_resolves_bit_exact(&svc, *t, c, "shrunk-pool");
    }
    svc.shutdown();
}

#[test]
fn supervisor_heals_a_failed_spawn() {
    let svc = ServiceHandle::start(ServiceConfig {
        tick: Duration::from_millis(5),
        fault_plan: ServiceFaultPlan::default().with(ServiceFault::SpawnFailAt { attempt: 0 }),
        ..ServiceConfig::stealing(2)
    })
    .expect("service start");
    poll_until(|| svc.workers() == 2, "the supervisor to respawn the failed slot");
    let stats = svc.stats();
    assert_eq!(stats.spawn_failures, 1);
    assert!(stats.respawns >= 1);
    let cfg = session(11);
    let ticket = svc.submit(cfg.clone()).expect("submit refused");
    assert_resolves_bit_exact(&svc, ticket, &cfg, "healed-pool");
    svc.shutdown();
}

// --- Concurrent churn: the composite no-lost-ticket sweep --------------

#[test]
fn concurrent_submitters_under_kill_churn_lose_nothing() {
    let per_thread: u64 = 6;
    let submitters = 3u64;
    let svc = Arc::new(
        ServiceHandle::start(ServiceConfig {
            fault_plan: ServiceFaultPlan::kill_every(4, per_thread * submitters),
            ..ServiceConfig::stealing(3)
        })
        .expect("service start"),
    );
    let mut threads = Vec::new();
    for s in 0..submitters {
        let svc = Arc::clone(&svc);
        threads.push(thread::spawn(move || {
            let mut accepted = Vec::new();
            for k in 0..per_thread {
                let seed = 100 + s * per_thread + k;
                accepted.push((svc.submit(session(seed)).expect("submit refused"), seed));
            }
            accepted
        }));
    }
    for t in threads {
        for (ticket, seed) in t.join().expect("submitter must not panic") {
            assert_resolves_bit_exact(&svc, ticket, &session(seed), "concurrent-churn");
        }
    }
    assert!(svc.stats().killed >= 1, "the churn plan must fire");
    svc.shutdown();
}
