//! The lint gate: `cargo test` fails if any workspace invariant checked
//! by `dls-lint` is violated.
//!
//! The same scan is available interactively as `cargo run -p dls-lint`
//! (add `--json` for machine-readable output).

use std::path::Path;

/// Walks up from this package to the workspace root (the directory whose
/// `Cargo.toml` declares `[workspace]`).
fn workspace_root() -> &'static Path {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    here.ancestors()
        .find(|dir| {
            std::fs::read_to_string(dir.join("Cargo.toml"))
                .map(|s| s.contains("[workspace]"))
                .unwrap_or(false)
        })
        .expect("test package lives inside the workspace")
}

#[test]
fn workspace_passes_dls_lint() {
    let report = dls_lint::scan_workspace(workspace_root()).expect("scan runs");
    assert!(
        report.is_clean(),
        "dls-lint found violations:\n\n{}",
        report.render_text()
    );
}

#[test]
fn lint_scan_covers_the_whole_workspace() {
    // A refactor that silently excludes members from the scan would make
    // the gate above pass vacuously; pin rough coverage floors.
    let report = dls_lint::scan_workspace(workspace_root()).expect("scan runs");
    assert!(
        report.files_scanned >= 70,
        "only {} files scanned — did member discovery break?",
        report.files_scanned
    );
    assert!(
        report.manifests_checked >= 11,
        "only {} manifests checked — did member discovery break?",
        report.manifests_checked
    );
}
