//! The lint gate: `cargo test` fails if any workspace invariant checked
//! by `dls-lint` is violated.
//!
//! The gate is baseline-aware: a finding listed in `lint_baseline.json`
//! at the repo root is accepted (so a burn-down can be staged across
//! PRs), but every *new* finding fails, and a separate test pins the
//! shipped baseline to empty so it can only grow in an explicit diff.
//!
//! The same scan is available interactively as `cargo run -p dls-lint`
//! (add `--json` for machine-readable output, `--baseline` for the same
//! acceptance semantics as this gate).

use std::path::Path;

/// Walks up from this package to the workspace root (the directory whose
/// `Cargo.toml` declares `[workspace]`).
fn workspace_root() -> &'static Path {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    here.ancestors()
        .find(|dir| {
            std::fs::read_to_string(dir.join("Cargo.toml"))
                .map(|s| s.contains("[workspace]"))
                .unwrap_or(false)
        })
        .expect("test package lives inside the workspace")
}

/// Reads and parses the committed baseline.
fn baseline() -> Vec<dls_lint::baseline::BaselineEntry> {
    let path = workspace_root().join("lint_baseline.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    dls_lint::baseline::parse(&text).expect("lint_baseline.json parses")
}

#[test]
fn workspace_passes_dls_lint() {
    let report = dls_lint::scan_workspace(workspace_root()).expect("scan runs");
    let (fresh, _accepted) = dls_lint::baseline::diff(&report.diagnostics, &baseline());
    assert!(
        fresh.is_empty(),
        "dls-lint found {} non-baselined violation(s):\n\n{}",
        fresh.len(),
        report.render_text()
    );
}

#[test]
fn shipped_baseline_is_empty() {
    // The workspace is fully clean or suppressed-with-reason; growing the
    // baseline is allowed only as an explicit, reviewed diff of this test.
    assert!(
        baseline().is_empty(),
        "lint_baseline.json has entries — burn them down or update this test \
         with a written justification"
    );
}

#[test]
fn all_analysis_passes_run_on_the_workspace() {
    // Each pass activates only when its scoped files are present; a rename
    // of executor.rs/runtime.rs/biguint.rs must not silently disable a pass.
    let report = dls_lint::scan_workspace(workspace_root()).expect("scan runs");
    for pass in dls_lint::passes::PASS_NAMES {
        assert!(
            report.passes_run.contains(pass),
            "pass {pass:?} did not activate — were its scoped files renamed? \
             (ran: {:?})",
            report.passes_run
        );
    }
}

#[test]
fn lint_scan_covers_the_whole_workspace() {
    // A refactor that silently excludes members from the scan would make
    // the gate above pass vacuously; pin rough coverage floors.
    let report = dls_lint::scan_workspace(workspace_root()).expect("scan runs");
    assert!(
        report.files_scanned >= 70,
        "only {} files scanned — did member discovery break?",
        report.files_scanned
    );
    assert!(
        report.manifests_checked >= 11,
        "only {} manifests checked — did member discovery break?",
        report.manifests_checked
    );
}
