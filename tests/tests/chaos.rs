//! Chaos suite: every liveness-fault plan crossed with every protocol
//! phase, on both NCP models.
//!
//! The contract under test (tentpole of the fault-tolerance layer):
//!
//! * no injected fault can hang a session — a defaulted party costs at
//!   most one expired phase deadline;
//! * every [`dls_protocol::DegradationReport`] tells the truth about what
//!   was observed (kind, phase, processor) and what was done about it
//!   (exclusion + re-run before Processing, degraded completion after);
//! * a pre-Processing default re-solves to **bit-identical** survivor
//!   allocations and payments as an independent from-scratch session over
//!   the survivor bid set;
//! * a sub-budget delay is a tolerated straggler: clean report, results
//!   bit-identical to the fault-free run.

use dls_dlt::SystemModel;
use dls_protocol::config::{Behavior, ProcessorConfig, SessionConfig};
use dls_protocol::fault::{FaultKind, FaultPlan};
use dls_protocol::referee::Phase;
use dls_protocol::{run_session, SessionOutcome, SessionStatus};
use std::time::{Duration, Instant};

const Z: f64 = 0.25;
const W: [f64; 3] = [1.0, 1.6, 2.2];
/// Never the originator under either NCP model with m = 3.
const FAULTY: usize = 1;
const BUDGET_MS: u64 = 400;
const DELAY_MS: u64 = 50;
const SEED: u64 = 11;

const MODELS: [SystemModel; 2] = [SystemModel::NcpFe, SystemModel::NcpNfe];
const PHASES: [Phase; 4] = [
    Phase::Bidding,
    Phase::Allocating,
    Phase::Processing,
    Phase::Payments,
];

fn session(
    model: SystemModel,
    fault_of: impl Fn(usize) -> FaultPlan,
    behavior_of: impl Fn(usize) -> Behavior,
) -> SessionConfig {
    // 12 blocks keeps per-session signing cheap; the chaos matrix cares
    // about liveness, not block granularity.
    let mut b = SessionConfig::builder(model, Z)
        .seed(SEED)
        .blocks(12)
        .phase_budget_ms(BUDGET_MS);
    for (i, &w) in W.iter().enumerate() {
        b = b.processor(ProcessorConfig::new(w, behavior_of(i)).with_fault(fault_of(i)));
    }
    b.build().unwrap()
}

/// Runs a session and asserts the no-hang bound: a fault is detected at
/// the first barrier its victim misses, so the whole session — including
/// a survivor re-run — may exceed normal execution by at most one phase
/// budget (plus slack for slow CI machines).
fn run_timed(cfg: &SessionConfig) -> SessionOutcome {
    let start = Instant::now();
    let out = run_session(cfg).expect("an injected liveness fault must degrade, not error");
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_millis(2 * BUDGET_MS + 1_000),
        "session exceeded its deadline budget by more than one phase: {elapsed:?}"
    );
    out
}

/// Bit-compares every non-`skip` processor's allocation, meter and
/// payment between two outcomes, plus the realized makespan.
fn assert_survivors_bit_identical(a: &SessionOutcome, b: &SessionOutcome, skip: usize, tag: &str) {
    for (i, (pa, pb)) in a.processors.iter().zip(&b.processors).enumerate() {
        if i == skip {
            continue;
        }
        let p = i + 1;
        assert_eq!(
            pa.alloc_fraction.to_bits(),
            pb.alloc_fraction.to_bits(),
            "{tag} P{p} alloc: {} vs {}",
            pa.alloc_fraction,
            pb.alloc_fraction
        );
        assert_eq!(pa.blocks_granted, pb.blocks_granted, "{tag} P{p} blocks");
        assert_eq!(pa.meter.to_bits(), pb.meter.to_bits(), "{tag} P{p} meter");
        let qa = pa.payment.unwrap_or_else(|| panic!("{tag} P{p}: payment missing"));
        let qb = pb.payment.unwrap_or_else(|| panic!("{tag} P{p}: payment missing"));
        assert_eq!(
            qa.compensation.to_bits(),
            qb.compensation.to_bits(),
            "{tag} P{p} compensation: {} vs {}",
            qa.compensation,
            qb.compensation
        );
        assert_eq!(
            qa.bonus.to_bits(),
            qb.bonus.to_bits(),
            "{tag} P{p} bonus: {} vs {}",
            qa.bonus,
            qb.bonus
        );
    }
    assert_eq!(
        a.makespan.map(f64::to_bits),
        b.makespan.map(f64::to_bits),
        "{tag} makespan"
    );
}

/// The full `{Crash,Mute,Delay,Garbage} × {Bidding,Allocating,Processing,
/// Payments} × {NCP-FE,NCP-NFE}` matrix.
#[test]
fn fault_matrix_never_hangs_and_reports_truthfully() {
    for model in MODELS {
        let clean = run_timed(&session(model, |_| FaultPlan::None, |_| Behavior::Compliant));
        assert!(clean.degradation.is_clean(), "{model}: baseline not clean");
        for phase in PHASES {
            let cells = [
                (FaultPlan::CrashAt(phase), Some(FaultKind::Crash)),
                (FaultPlan::MuteAt(phase), Some(FaultKind::Omission)),
                (FaultPlan::GarbageAt(phase), Some(FaultKind::Garbage)),
                (FaultPlan::DelayAt(phase, DELAY_MS), None),
            ];
            for (plan, kind) in cells {
                let cfg = session(
                    model,
                    |i| if i == FAULTY { plan } else { FaultPlan::None },
                    |_| Behavior::Compliant,
                );
                let out = run_timed(&cfg);
                let tag = format!("{model}, {plan}");
                let Some(kind) = kind else {
                    // A sub-budget delay is a tolerated straggler: the
                    // session completes clean and bit-identical.
                    assert!(out.degradation.is_clean(), "{tag}: {}", out.degradation);
                    assert_eq!(out.status, SessionStatus::Completed, "{tag}");
                    assert_survivors_bit_identical(&out, &clean, usize::MAX, &tag);
                    continue;
                };
                // The report names the right processor, phase and kind.
                assert!(
                    out.degradation
                        .faults_at(phase)
                        .iter()
                        .any(|f| f.processor == FAULTY && f.kind == kind),
                    "{tag}: faults = {:?}",
                    out.degradation.faults
                );
                if phase < Phase::Processing {
                    // Pre-Processing default: fined per the §4 schedule,
                    // excluded, survivors re-ran over the remaining bids.
                    assert_eq!(out.degradation.excluded, vec![FAULTY], "{tag}");
                    assert_eq!(out.degradation.rounds, 2, "{tag}");
                    assert_eq!(
                        out.degradation.default_fines,
                        vec![(FAULTY, cfg.fine)],
                        "{tag}"
                    );
                    assert_eq!(out.status, SessionStatus::CompletedWithFines, "{tag}");
                    assert!(out.processors[FAULTY].payment.is_none(), "{tag}");
                    assert!(
                        out.processors[FAULTY].fined >= cfg.fine,
                        "{tag}: fined {}",
                        out.processors[FAULTY].fined
                    );
                } else {
                    // During/after Processing: degraded completion, never
                    // a rollback or re-run.
                    assert_eq!(out.degradation.rounds, 1, "{tag}");
                    assert!(out.degradation.excluded.is_empty(), "{tag}");
                    assert!(out.degradation.default_fines.is_empty(), "{tag}");
                    // The payment vector is missing exactly when the fault
                    // silences the Payments phase itself, or the crash
                    // predates it.
                    let vector_missing = phase == Phase::Payments
                        || matches!(plan, FaultPlan::CrashAt(_));
                    if vector_missing {
                        assert_eq!(
                            out.degradation.withheld_payments,
                            vec![FAULTY],
                            "{tag}"
                        );
                        assert!(out.processors[FAULTY].payment.is_none(), "{tag}");
                        // The missing vector is fined by the ordinary §4
                        // payment adjudication, not a special case.
                        assert_eq!(out.status, SessionStatus::CompletedWithFines, "{tag}");
                        assert_eq!(out.processors[FAULTY].fined, cfg.fine, "{tag}");
                    } else {
                        // Mute/garbage at Processing only loses the meter:
                        // everyone falls back to the bid consistently, the
                        // vectors agree, and nobody is fined.
                        assert!(out.degradation.withheld_payments.is_empty(), "{tag}");
                        assert!(out.processors[FAULTY].payment.is_some(), "{tag}");
                        assert_eq!(out.status, SessionStatus::Completed, "{tag}");
                    }
                    // Survivors are always paid in a degraded completion.
                    for i in (0..W.len()).filter(|&i| i != FAULTY) {
                        assert!(
                            out.processors[i].payment.is_some(),
                            "{tag}: P{} unpaid",
                            i + 1
                        );
                    }
                }
            }
        }
    }
}

/// Acceptance bar: a pre-Processing default's survivor re-run must be
/// bit-identical to an independent from-scratch session over the survivor
/// bid set (modelled as the faulty processor sitting out).
#[test]
fn pre_processing_defaults_resolve_to_the_independent_survivor_run() {
    for model in MODELS {
        let ghost = run_timed(&session(
            model,
            |_| FaultPlan::None,
            |i| {
                if i == FAULTY {
                    Behavior::NonParticipant
                } else {
                    Behavior::Compliant
                }
            },
        ));
        for phase in [Phase::Bidding, Phase::Allocating] {
            for plan in [
                FaultPlan::CrashAt(phase),
                FaultPlan::MuteAt(phase),
                FaultPlan::GarbageAt(phase),
            ] {
                let faulted = run_timed(&session(
                    model,
                    |i| if i == FAULTY { plan } else { FaultPlan::None },
                    |_| Behavior::Compliant,
                ));
                let tag = format!("{model}, {plan}");
                assert_survivors_bit_identical(&faulted, &ghost, FAULTY, &tag);
                assert!(faulted.processors[FAULTY].payment.is_none(), "{tag}");
            }
        }
    }
}

/// The load originator itself defaulting at Allocating is the nastiest
/// pre-Processing case: no grants ever go out, the survivors have nothing
/// signed to accuse with, and the referee's deadline/sweep machinery must
/// still detect, exclude and re-run with a new head promoted.
#[test]
fn originator_faults_at_allocating_promote_a_new_head() {
    for model in MODELS {
        let orig = model.originator(W.len()).unwrap();
        let ghost = run_timed(&session(
            model,
            |_| FaultPlan::None,
            |i| {
                if i == orig {
                    Behavior::NonParticipant
                } else {
                    Behavior::Compliant
                }
            },
        ));
        for plan in [
            FaultPlan::CrashAt(Phase::Allocating),
            FaultPlan::MuteAt(Phase::Allocating),
            FaultPlan::GarbageAt(Phase::Allocating),
        ] {
            let faulted = run_timed(&session(
                model,
                |i| if i == orig { plan } else { FaultPlan::None },
                |_| Behavior::Compliant,
            ));
            let tag = format!("{model}, originator {plan}");
            assert_eq!(faulted.degradation.excluded, vec![orig], "{tag}");
            assert_eq!(faulted.degradation.rounds, 2, "{tag}");
            assert_eq!(faulted.status, SessionStatus::CompletedWithFines, "{tag}");
            assert_survivors_bit_identical(&faulted, &ghost, orig, &tag);
        }
    }
}

/// A strategic offence that aborts the session (equivocation) takes
/// precedence over a concurrent liveness default: the session ends
/// `Aborted`, nobody re-runs, and both offenders are fined.
#[test]
fn strategic_abort_takes_precedence_over_liveness_defaults() {
    let cfg = SessionConfig::builder(SystemModel::NcpFe, Z)
        .seed(SEED)
        .phase_budget_ms(BUDGET_MS)
        .processor(ProcessorConfig::new(W[0], Behavior::Compliant))
        .processor(
            ProcessorConfig::new(W[1], Behavior::Compliant)
                .with_fault(FaultPlan::CrashAt(Phase::Bidding)),
        )
        .processor(ProcessorConfig::new(
            W[2],
            Behavior::EquivocateBids { factor: 2.0 },
        ))
        .build()
        .unwrap();
    let out = run_timed(&cfg);
    assert_eq!(
        out.status,
        SessionStatus::Aborted {
            phase: Phase::Bidding
        }
    );
    assert_eq!(out.degradation.rounds, 1);
    assert!(out.degradation.excluded.is_empty(), "no re-run on abort");
    assert!(out
        .degradation
        .faults_at(Phase::Bidding)
        .iter()
        .any(|f| f.processor == 1 && f.kind == FaultKind::Crash));
    assert!(out.processors[2].fined > 0.0, "equivocator fined");
    assert!(out.processors[1].fined > 0.0, "defaulter fined");
}

/// Tier-1 smoke: the cheapest fault in the matrix, kept standalone so the
/// termination property is exercised even when the full matrix is
/// filtered out.
#[test]
fn crash_at_bidding_terminates_within_budget() {
    let cfg = session(
        SystemModel::NcpFe,
        |i| {
            if i == FAULTY {
                FaultPlan::CrashAt(Phase::Bidding)
            } else {
                FaultPlan::None
            }
        },
        |_| Behavior::Compliant,
    );
    let out = run_timed(&cfg); // asserts the wall-clock bound
    assert_eq!(out.degradation.excluded, vec![FAULTY]);
    assert_eq!(out.status, SessionStatus::CompletedWithFines);
}
