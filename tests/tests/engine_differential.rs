//! Differential tests for the incremental auction engine: a chain spliced
//! in place by [`ChainState::update_bid`] must agree **bit-exactly** (every
//! `f64` compared via `to_bits`) with a from-scratch solve of the same
//! market, across all three bus models, after arbitrary update sequences —
//! including head-slot (`i = 0`) and tail-slot updates, which exercise the
//! special first/last link factors, and the degenerate m = 1 / m = 2
//! markets.
//!
//! Bit-exactness is the design contract (not a tolerance choice): the
//! splice recomputes each affected product with the *same expressions in
//! the same order* as the rebuild, so IEEE-754 determinism makes the
//! results identical. A tolerance here would hide a broken splice.
//!
//! Workloads come from `dls_bench::workloads::quantized_rates`, the same
//! frozen generator the throughput benchmark replays.

use dls::dlt::{optimal, BusParams, ChainState, LeaveOneOut, ALL_MODELS};
use dls::mechanism::{compute_payments, AuctionEngine};
use dls_bench::workloads::quantized_rates;

const Z: f64 = 0.1875; // 3/16, dyadic

/// A deterministic update schedule hitting the head slot, the tail slot,
/// both ends of every special link, and a spread of middle positions.
fn update_schedule(m: usize, seed: u64) -> Vec<(usize, f64)> {
    let rates = quantized_rates(16.max(m), 1.0, 8.0, seed, 64);
    let positions: Vec<usize> = [0, m - 1, m / 2, 0, m.saturating_sub(2), 1 % m, m / 3, m - 1]
        .into_iter()
        .map(|i| i % m)
        .collect();
    positions
        .into_iter()
        .zip(rates)
        .collect()
}

fn assert_bits_eq(a: &[f64], b: &[f64], ctx: &str) {
    let ab: Vec<u64> = a.iter().map(|x| x.to_bits()).collect();
    let bb: Vec<u64> = b.iter().map(|x| x.to_bits()).collect();
    assert_eq!(ab, bb, "{ctx}: {a:?} vs {b:?}");
}

#[test]
fn chain_update_matches_from_scratch_bitwise() {
    for model in ALL_MODELS {
        for (seed, m) in [(41u64, 1usize), (42, 2), (43, 3), (44, 8), (45, 64), (46, 257)] {
            let w = quantized_rates(m, 1.0, 8.0, seed, 64);
            let params = BusParams::new(Z, w).unwrap();
            let mut chain = ChainState::new(model, &params);
            let mut fresh_alloc = Vec::new();
            let mut inc_alloc = Vec::new();
            for (step, (i, bid)) in update_schedule(m, seed ^ 0xa5a5).into_iter().enumerate() {
                chain.update_bid(i, bid);

                // From-scratch reference: a brand-new parameter set solved
                // by the one-shot closed form.
                let scratch = BusParams::new(Z, chain.params().w().to_vec()).unwrap();
                let expect = optimal::fractions(model, &scratch);
                chain.fractions_into(&mut inc_alloc);
                assert_bits_eq(
                    &inc_alloc,
                    &expect,
                    &format!("{model} m={m} step={step} i={i} fractions"),
                );
                // Makespan reference: LeaveOneOut builds its own chain from
                // scratch and shares ChainState's closed-form contract
                // (`head_cost(w[0]) / Σu`, one division — `optimal::
                // optimal_makespan` routes through normalized fractions and
                // may differ in the last ULP, so it is not the oracle here).
                let loo = LeaveOneOut::new(model, Z, chain.params().w().to_vec());
                assert_eq!(
                    Some(chain.optimal_makespan().to_bits()),
                    loo.optimal_makespan().map(f64::to_bits),
                    "{model} m={m} step={step} i={i} makespan"
                );

                // And against a freshly built chain over the same bids.
                let rebuilt = ChainState::new(model, &scratch);
                rebuilt.clone().fractions_into(&mut fresh_alloc);
                assert_bits_eq(
                    &inc_alloc,
                    &fresh_alloc,
                    &format!("{model} m={m} step={step} i={i} vs rebuilt chain"),
                );
            }
        }
    }
}

#[test]
fn engine_evaluate_matches_one_shot_solve_bitwise() {
    for model in ALL_MODELS {
        for (seed, m) in [(51u64, 1usize), (52, 2), (53, 5), (54, 33), (55, 128)] {
            let bids = quantized_rates(m, 1.0, 8.0, seed, 64);
            let mut eng = AuctionEngine::new(model, Z, bids).unwrap();
            for (step, (i, bid)) in update_schedule(m, seed ^ 0x5a5a).into_iter().enumerate() {
                eng.submit_bid(i, bid).unwrap();
                let params = BusParams::new(Z, eng.bids().to_vec()).unwrap();
                let expect = optimal::fractions(model, &params);
                let loo = LeaveOneOut::new(model, Z, eng.bids().to_vec());
                let quote = eng.evaluate();
                assert_eq!(
                    Some(quote.makespan.to_bits()),
                    loo.optimal_makespan().map(f64::to_bits),
                    "{model} m={m} step={step} makespan"
                );
                let frac = quote.fractions.to_vec();
                assert_bits_eq(&frac, &expect, &format!("{model} m={m} step={step} fractions"));
            }
        }
    }
}

#[test]
fn engine_payments_match_one_shot_solve_bitwise() {
    for model in ALL_MODELS {
        for (seed, m) in [(61u64, 1usize), (62, 2), (63, 4), (64, 19), (65, 96)] {
            let bids = quantized_rates(m, 1.0, 8.0, seed, 64);
            let mut eng = AuctionEngine::new(model, Z, bids).unwrap();
            for (i, bid) in update_schedule(m, seed ^ 0x7e57) {
                eng.submit_bid(i, bid).unwrap();
            }
            // Every fourth agent slacks by one quantum.
            let observed: Vec<f64> = eng
                .bids()
                .iter()
                .enumerate()
                .map(|(i, &w)| if i % 4 == 1 { w + 1.0 / 64.0 } else { w })
                .collect();

            let params = BusParams::new(Z, eng.bids().to_vec()).unwrap();
            let alloc = optimal::fractions(model, &params);
            let expect = compute_payments(model, &params, &alloc, &observed);
            let got = eng.payments(&observed).unwrap();
            // Payment derives PartialEq over raw f64 — exact equality, and
            // the schedule never produces NaN, so == is to_bits equality.
            assert_eq!(got, expect.as_slice(), "{model} m={m} seed={seed}");
        }
    }
}

#[test]
fn head_slot_updates_refresh_the_special_links() {
    // The head slot participates in `head_cost` and (for m >= 2) link 0;
    // the last two slots participate in the NCP-NFE special last link.
    // Hammer exactly those positions.
    for model in ALL_MODELS {
        for m in [2usize, 3, 4] {
            let bids = quantized_rates(m, 1.0, 8.0, 71, 64);
            let mut eng = AuctionEngine::new(model, Z, bids).unwrap();
            for (step, &bid) in [0.5, 7.5, 1.015625, 3.25].iter().enumerate() {
                for i in [0, m - 1, m.saturating_sub(2)] {
                    eng.submit_bid(i, bid + i as f64 / 64.0).unwrap();
                    let params = BusParams::new(Z, eng.bids().to_vec()).unwrap();
                    let expect = optimal::fractions(model, &params);
                    let frac = eng.fractions().to_vec();
                    assert_bits_eq(
                        &frac,
                        &expect,
                        &format!("{model} m={m} step={step} i={i}"),
                    );
                }
            }
        }
    }
}

#[test]
fn mixed_incremental_and_rebuild_streams_stay_identical() {
    // Interleave the two engine paths over the same update stream: the
    // incremental engine must never drift from the rebuild engine.
    for model in ALL_MODELS {
        let m = 48;
        let bids = quantized_rates(m, 1.0, 8.0, 81, 64);
        let mut inc = AuctionEngine::new(model, Z, bids.clone()).unwrap();
        let mut full = AuctionEngine::new(model, Z, bids).unwrap();
        for (step, (i, bid)) in update_schedule(m, 82).into_iter().enumerate() {
            inc.submit_bid(i, bid).unwrap();
            full.submit_bid_rebuild(i, bid).unwrap();
            assert_eq!(
                inc.optimal_makespan().to_bits(),
                full.optimal_makespan().to_bits(),
                "{model} step={step} makespan"
            );
            let a = inc.fractions().to_vec();
            let b = full.fractions().to_vec();
            assert_bits_eq(&a, &b, &format!("{model} step={step} fractions"));
        }
    }
}
