//! Adversarial property tests over the whole stack: random markets with
//! randomly assigned behaviours must always satisfy the paper's safety
//! properties — fines hit only actual deviants (Lemma 5.2), every finable
//! offence present is detected (Theorem 5.1), and money is conserved.

use dls::protocol::config::{Behavior, ProcessorConfig, SessionConfig};
use dls::protocol::runtime::run_session;
use dls::{SessionStatus, SystemModel};
use proptest::prelude::*;

/// A random behaviour, weighted toward compliance.
fn arb_behavior(m: usize) -> impl Strategy<Value = Behavior> {
    prop_oneof![
        4 => Just(Behavior::Compliant),
        1 => (1.1f64..3.0).prop_map(|factor| Behavior::Misreport { factor }),
        1 => (1.1f64..3.0).prop_map(|factor| Behavior::Slack { factor }),
        1 => (1.5f64..3.0).prop_map(|factor| Behavior::EquivocateBids { factor }),
        1 => (0..m, 1usize..3).prop_map(|(victim, shortfall)| Behavior::ShortAllocate {
            victim,
            shortfall
        }),
        1 => (0..m, 1usize..3)
            .prop_map(|(victim, excess)| Behavior::OverAllocate { victim, excess }),
        1 => (0..m, 1.5f64..4.0)
            .prop_map(|(target, factor)| Behavior::CorruptPayments { target, factor }),
        1 => Just(Behavior::FalselyAccuseAllocation),
        1 => (0..m).prop_map(|impersonate| Behavior::ForgeExtraBid { impersonate }),
    ]
}

fn arb_session() -> impl Strategy<Value = SessionConfig> {
    (2usize..6, any::<u64>()).prop_flat_map(|(m, seed)| {
        (
            prop::collection::vec((1.0f64..5.0, arb_behavior(m)), m..=m),
            Just(seed),
            prop::sample::select(vec![SystemModel::NcpFe, SystemModel::NcpNfe]),
        )
            .prop_filter_map("valid config", move |(procs, seed, model)| {
                let originator = model.originator(m);
                SessionConfig::builder(model, 0.2)
                    .processors(procs.iter().map(|&(w, b)| {
                        // Short/over-allocation is an originator offence;
                        // self-victimization is meaningless.
                        let b = match b {
                            Behavior::ShortAllocate { victim, .. }
                            | Behavior::OverAllocate { victim, .. }
                                if Some(victim) == originator =>
                            {
                                Behavior::Compliant
                            }
                            other => other,
                        };
                        ProcessorConfig::new(w, b)
                    }))
                    .seed(seed % 16) // bound key-generation cost
                    .blocks(40)
                    .build()
                    .ok()
            })
    })
}

/// Which processors in `cfg` actually commit a *detectable protocol
/// offence* in this session? (Originator offences only fire for the actual
/// originator; false accusations only fire when there is a grant to lie
/// about, i.e. the accuser is not the originator.)
fn expected_offenders(cfg: &SessionConfig) -> Vec<usize> {
    let orig = cfg.originator();
    cfg.processors
        .iter()
        .enumerate()
        .filter(|(i, p)| match p.behavior {
            Behavior::EquivocateBids { factor } => factor != 1.0,
            Behavior::ShortAllocate { .. } | Behavior::OverAllocate { .. } => Some(*i) == orig,
            Behavior::CorruptPayments { .. } => true,
            Behavior::FalselyAccuseAllocation => Some(*i) != orig,
            // Forged bids fail verification and are silently discarded —
            // detectable as noise, not attributable to anyone.
            Behavior::ForgeExtraBid { .. } => false,
            _ => false,
        })
        .map(|(i, _)| i)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fines_only_for_deviants_and_money_conserved(cfg in arb_session()) {
        let out = run_session(&cfg).unwrap();
        let offenders = expected_offenders(&cfg);
        // Lemma 5.2: every fined processor actually deviated.
        for fined in out.fined_processors() {
            prop_assert!(
                offenders.contains(&fined),
                "P{} fined without offence ({})",
                fined + 1,
                cfg.processors[fined].behavior
            );
        }
        // Conservation.
        prop_assert!(out.ledger.conservation_error().abs() < 1e-9);
        // No offenders at all -> clean completion.
        if offenders.is_empty() {
            prop_assert_eq!(out.status.clone(), SessionStatus::Completed);
            prop_assert!(out.fined_processors().is_empty());
        }
    }

    #[test]
    fn earliest_phase_offence_is_always_detected(cfg in arb_session()) {
        let out = run_session(&cfg).unwrap();
        let offenders = expected_offenders(&cfg);
        if offenders.is_empty() {
            return Ok(());
        }
        // Theorem 5.1: at least one offender is caught — specifically one
        // whose offence fires in the earliest offending phase (later
        // offences may be pre-empted by an earlier abort).
        prop_assert!(
            !out.fined_processors().is_empty(),
            "offenders {:?} but nobody fined (status {:?})",
            offenders,
            out.status
        );
        // Equivocators always abort the session at Bidding.
        let has_equivocator = cfg
            .processors
            .iter()
            .any(|p| matches!(p.behavior, Behavior::EquivocateBids { .. }));
        if has_equivocator {
            prop_assert_eq!(
                out.status.clone(),
                SessionStatus::Aborted { phase: dls::protocol::referee::Phase::Bidding }
            );
        }
    }

    #[test]
    fn compliant_processors_never_lose_to_the_fine_system(cfg in arb_session()) {
        // A compliant worker's utility from fines/rewards alone is >= 0:
        // it can be rewarded, never fined (Corollary 5.1 + Lemma 5.2).
        let out = run_session(&cfg).unwrap();
        for (i, p) in out.processors.iter().enumerate() {
            if p.config.behavior == Behavior::Compliant {
                prop_assert!(p.fined == 0.0, "compliant P{} fined", i + 1);
                prop_assert!(p.rewarded >= 0.0);
            }
        }
    }
}
