//! Differential tests for the O(m) leave-one-out payment pipeline: the fast
//! solvers must agree with the retained Θ(m²) oracles — bit-exactly over
//! [`Rational`], within float tolerance over `f64` — on seeded randomized
//! markets across all three bus models, including the degenerate shapes
//! (m = 1, m = 2, identical rates).
//!
//! Workloads come from `dls_bench::workloads::quantized_rates`: dyadic
//! rates, so the `f64` inputs convert to rationals without rounding and the
//! two domains see literally the same market.

use dls::dlt::{optimal, BusParams, LeaveOneOut, ALL_MODELS};
use dls::mechanism::exact::{compute_payments_exact, compute_payments_exact_naive};
use dls::mechanism::{compute_payments, compute_payments_naive};
use dls::num::Rational;
use dls_bench::workloads::quantized_rates;

fn rats(xs: &[f64]) -> Vec<Rational> {
    xs.iter().map(|&x| Rational::from_f64(x).unwrap()).collect()
}

/// Observed rates: every fourth agent slacks by one quantum.
fn observe(bids: &[f64]) -> Vec<f64> {
    bids.iter()
        .enumerate()
        .map(|(i, &w)| if i % 4 == 1 { w + 1.0 / 64.0 } else { w })
        .collect()
}

const Z: f64 = 0.1875; // 3/16, dyadic

#[test]
fn loo_f64_matches_naive_resolve() {
    for model in ALL_MODELS {
        for (seed, m) in [(1u64, 2usize), (2, 3), (3, 4), (4, 7), (5, 16), (6, 48)] {
            let w = quantized_rates(m, 1.0, 8.0, seed, 64);
            let params = BusParams::new(Z, w.clone()).unwrap();
            let loo = LeaveOneOut::new(model, Z, w);
            for i in 0..m {
                let fast = loo.makespan_without(i).unwrap();
                let naive = optimal::makespan_without_naive(model, &params, i).unwrap();
                assert!(
                    (fast - naive).abs() <= 1e-12 * naive.abs(),
                    "{model} m={m} seed={seed} i={i}: {fast} vs {naive}"
                );
            }
        }
        // m = 128, sampled removals (the naive oracle is Θ(m) per query).
        let m = 128;
        let w = quantized_rates(m, 1.0, 8.0, 7, 64);
        let params = BusParams::new(Z, w.clone()).unwrap();
        let loo = LeaveOneOut::new(model, Z, w);
        for i in [0usize, 1, 63, 126, 127] {
            let fast = loo.makespan_without(i).unwrap();
            let naive = optimal::makespan_without_naive(model, &params, i).unwrap();
            assert!(
                (fast - naive).abs() <= 1e-12 * naive.abs(),
                "{model} m={m} i={i}: {fast} vs {naive}"
            );
        }
    }
}

#[test]
fn loo_rational_matches_naive_resolve_exactly() {
    use dls::dlt::exact::{self, ExactParams};
    let z = Rational::from_f64(Z).unwrap();
    for model in ALL_MODELS {
        for (seed, m) in [(11u64, 2usize), (12, 3), (13, 5), (14, 8), (15, 32)] {
            let w = rats(&quantized_rates(m, 1.0, 8.0, seed, 64));
            let loo = LeaveOneOut::new(model, z.clone(), w.clone());
            for i in 0..m {
                let mut reduced = w.clone();
                reduced.remove(i);
                let rp = ExactParams::new(z.clone(), reduced);
                let naive = exact::optimal_makespan(model, &rp);
                assert_eq!(
                    loo.makespan_without(i).unwrap(),
                    naive,
                    "{model} m={m} seed={seed} i={i}"
                );
            }
        }
        // m = 128, sampled removals: the equality must stay bit-exact even
        // when chain numerators/denominators run to thousands of bits.
        let m = 128;
        let w = rats(&quantized_rates(m, 1.0, 8.0, 16, 64));
        let loo = LeaveOneOut::new(model, z.clone(), w.clone());
        for i in [0usize, 1, 63, 126, 127] {
            let mut reduced = w.clone();
            reduced.remove(i);
            let rp = ExactParams::new(z.clone(), reduced);
            assert_eq!(
                loo.makespan_without(i).unwrap(),
                exact::optimal_makespan(model, &rp),
                "{model} m={m} i={i}"
            );
        }
    }
}

#[test]
fn payments_f64_fast_matches_naive() {
    for model in ALL_MODELS {
        for (seed, m) in [(21u64, 2usize), (22, 3), (23, 6), (24, 17), (25, 64)] {
            let bids = quantized_rates(m, 1.0, 8.0, seed, 64);
            let observed = observe(&bids);
            let params = BusParams::new(Z, bids).unwrap();
            let alloc = optimal::fractions(model, &params);
            let fast = compute_payments(model, &params, &alloc, &observed);
            let naive = compute_payments_naive(model, &params, &alloc, &observed);
            for (i, (f, n)) in fast.iter().zip(&naive).enumerate() {
                assert!(
                    (f.compensation - n.compensation).abs() <= 1e-12 * n.compensation.abs(),
                    "{model} m={m} i={i} compensation"
                );
                assert!(
                    (f.bonus - n.bonus).abs() <= 1e-12 * (1.0 + n.bonus.abs()),
                    "{model} m={m} i={i} bonus: {} vs {}",
                    f.bonus,
                    n.bonus
                );
            }
        }
    }
}

#[test]
fn payments_exact_fast_matches_naive_bit_for_bit() {
    let z = Rational::from_f64(Z).unwrap();
    for model in ALL_MODELS {
        for (seed, m) in [(31u64, 1usize), (32, 2), (33, 3), (34, 9), (35, 24)] {
            let bids_f = quantized_rates(m, 1.0, 8.0, seed, 64);
            let (bids, observed) = (rats(&bids_f), rats(&observe(&bids_f)));
            let fast = compute_payments_exact(model, &z, &bids, &observed).unwrap();
            let naive = compute_payments_exact_naive(model, &z, &bids, &observed).unwrap();
            assert_eq!(fast, naive, "{model} m={m} seed={seed}");
        }
    }
}

#[test]
fn degenerate_markets_agree() {
    let z = Rational::from_f64(Z).unwrap();
    for model in ALL_MODELS {
        // Single-agent market: both solvers fall back to the solo term.
        let solo = rats(&[2.5]);
        assert_eq!(
            compute_payments_exact(model, &z, &solo, &solo).unwrap(),
            compute_payments_exact_naive(model, &z, &solo, &solo).unwrap(),
            "{model} m=1"
        );

        // Two agents, one slacking.
        let bids = rats(&[2.0, 3.0]);
        let observed = rats(&[2.0, 3.25]);
        assert_eq!(
            compute_payments_exact(model, &z, &bids, &observed).unwrap(),
            compute_payments_exact_naive(model, &z, &bids, &observed).unwrap(),
            "{model} m=2"
        );

        // Identical rates: ties everywhere — prefix/suffix maxima and the
        // chain splice must still agree with the oracle exactly.
        let same_f = vec![2.0; 12];
        let params = BusParams::new(Z, same_f.clone()).unwrap();
        let alloc = optimal::fractions(model, &params);
        let observed_f = observe(&same_f);
        let fast = compute_payments(model, &params, &alloc, &observed_f);
        let naive = compute_payments_naive(model, &params, &alloc, &observed_f);
        for (i, (f, n)) in fast.iter().zip(&naive).enumerate() {
            assert!(
                (f.bonus - n.bonus).abs() <= 1e-12,
                "{model} identical rates i={i}"
            );
        }
        let same = rats(&same_f);
        let observed = rats(&observed_f);
        assert_eq!(
            compute_payments_exact(model, &z, &same, &observed).unwrap(),
            compute_payments_exact_naive(model, &z, &same, &observed).unwrap(),
            "{model} identical rates exact"
        );
    }
}
