//! Differential testing: three independent implementations of the DLS-BL
//! payment pipeline — the trusted in-process market (`dls-mechanism`), the
//! centralized protocol baseline (`dls-protocol::centralized`), and the
//! exact-rational oracle (`dls-mechanism::exact`) — must agree on random
//! compliant markets.

use dls::mechanism::exact::compute_payments_exact;
use dls::mechanism::{AgentSpec, Market};
use dls::num::Rational;
use dls::protocol::centralized::run_centralized;
use dls::protocol::config::{Behavior, ProcessorConfig, SessionConfig};
use dls::SystemModel;
use proptest::prelude::*;

/// Exactly representable rates so f64 and rational pipelines see the same
/// numbers: k/16 with k in a positive range.
fn arb_rates() -> impl Strategy<Value = (f64, Vec<f64>)> {
    (
        1u32..8,
        prop::collection::vec(16u32..128, 2..7),
    )
        .prop_map(|(zk, wk)| {
            (
                zk as f64 / 16.0,
                wk.into_iter().map(|k| k as f64 / 16.0).collect(),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn market_equals_exact_oracle((z, w) in arb_rates()) {
        for model in dls::dlt::ALL_MODELS {
            let market = Market::new(
                model, z,
                w.iter().map(|&x| AgentSpec::truthful(x)).collect(),
            ).unwrap().run();
            let bids: Vec<Rational> =
                w.iter().map(|&x| Rational::from_f64(x).unwrap()).collect();
            let exact = compute_payments_exact(
                model,
                &Rational::from_f64(z).unwrap(),
                &bids,
                &bids,
            ).unwrap();
            for (f, e) in market.payments.iter().zip(&exact) {
                prop_assert!(
                    (f.compensation - e.compensation.to_f64()).abs() < 1e-10,
                    "{}: comp {} vs {}", model, f.compensation, e.compensation.to_f64()
                );
                prop_assert!(
                    (f.bonus - e.bonus.to_f64()).abs() < 1e-10,
                    "{}: bonus {} vs {}", model, f.bonus, e.bonus.to_f64()
                );
            }
        }
    }

    #[test]
    fn centralized_baseline_equals_market((z, w) in arb_rates()) {
        let cfg = SessionConfig::builder(SystemModel::Cp, z)
            .processors(w.iter().map(|&x| ProcessorConfig::new(x, Behavior::Compliant)))
            .seed(6)
            .blocks(8 * w.len())
            .build()
            .unwrap();
        let central = run_centralized(&cfg).unwrap();
        let market = Market::new(
            SystemModel::Cp, z,
            w.iter().map(|&x| AgentSpec::truthful(x)).collect(),
        ).unwrap().run();
        for i in 0..w.len() {
            prop_assert!(
                (central.payments[i].total() - market.payments[i].total()).abs() < 1e-10
            );
            prop_assert!((central.utilities[i] - market.utility(i)).abs() < 1e-10);
        }
    }
}
