//! Differential suite for the event-driven session executor: the threaded
//! runtime ([`dls_protocol::run_session`]) is the oracle, and the pooled
//! executor ([`dls_protocol::run_session_pooled_with`] /
//! [`dls_protocol::run_session_vm`]) must reproduce every
//! [`SessionOutcome`] **bit for bit** — allocations, payments, fines,
//! rewards, utilities, message accounting, ledger journal, timeline, and
//! fault-plan degradation reports.
//!
//! Float equality here is `to_bits` (or whole-structure `Debug` equality,
//! which formats floats as their shortest round-trip representation and is
//! therefore also bit-exact); nothing is compared with a tolerance.
//!
//! The matrix: both NCP models × {truthful, each strategic behavior, each
//! liveness-fault plan}, plus the uneven-shard regression (5 sessions on
//! 4 workers — the shape of the PR-3 batch-sizing bug).

use dls_dlt::SystemModel;
use dls_protocol::config::{Behavior, ProcessorConfig, SessionConfig};
use dls_protocol::fault::FaultPlan;
use dls_protocol::referee::Phase;
use dls_protocol::{run_session, run_session_pooled_with, run_session_vm, SessionOutcome};

const Z: f64 = 0.25;
const W: [f64; 4] = [1.0, 1.6, 2.2, 3.1];
const SEED: u64 = 23;
/// Small budget so threaded crash detection costs milliseconds, not the
/// default 5 s, keeping the fault matrix fast.
const BUDGET_MS: u64 = 400;

const MODELS: [SystemModel; 2] = [SystemModel::NcpFe, SystemModel::NcpNfe];

fn session(
    model: SystemModel,
    behavior_of: impl Fn(usize) -> Behavior,
    fault_of: impl Fn(usize) -> FaultPlan,
) -> SessionConfig {
    let mut b = SessionConfig::builder(model, Z)
        .seed(SEED)
        .blocks(12)
        .phase_budget_ms(BUDGET_MS);
    for (i, &w) in W.iter().enumerate() {
        b = b.processor(ProcessorConfig::new(w, behavior_of(i)).with_fault(fault_of(i)));
    }
    b.build().expect("differential config must be builder-valid")
}

/// Bit-exact outcome equality: targeted per-field assertions first (for
/// readable failures), then whole-structure `Debug` equality as the
/// catch-all (covers ledger journal, timeline, every degradation field).
fn assert_outcomes_identical(oracle: &SessionOutcome, candidate: &SessionOutcome, what: &str) {
    assert_eq!(oracle.status, candidate.status, "{what}: status");
    assert_eq!(
        oracle.fine.to_bits(),
        candidate.fine.to_bits(),
        "{what}: fine"
    );
    assert_eq!(oracle.messages, candidate.messages, "{what}: message stats");
    assert_eq!(
        oracle.processors.len(),
        candidate.processors.len(),
        "{what}: processor count"
    );
    for (i, (a, b)) in oracle
        .processors
        .iter()
        .zip(&candidate.processors)
        .enumerate()
    {
        assert_eq!(a.participated, b.participated, "{what}: P{i} participated");
        assert_eq!(a.bid, b.bid, "{what}: P{i} bid");
        assert_eq!(
            a.alloc_fraction.to_bits(),
            b.alloc_fraction.to_bits(),
            "{what}: P{i} alloc fraction"
        );
        assert_eq!(a.blocks_granted, b.blocks_granted, "{what}: P{i} blocks");
        assert_eq!(a.meter.to_bits(), b.meter.to_bits(), "{what}: P{i} meter");
        assert_eq!(a.fined.to_bits(), b.fined.to_bits(), "{what}: P{i} fined");
        assert_eq!(
            a.rewarded.to_bits(),
            b.rewarded.to_bits(),
            "{what}: P{i} rewarded"
        );
        assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "{what}: P{i} cost");
        assert_eq!(
            a.utility.to_bits(),
            b.utility.to_bits(),
            "{what}: P{i} utility"
        );
    }
    assert_eq!(
        oracle.makespan.map(f64::to_bits),
        candidate.makespan.map(f64::to_bits),
        "{what}: makespan"
    );
    assert_eq!(
        oracle.degradation.faults, candidate.degradation.faults,
        "{what}: degradation faults"
    );
    assert_eq!(
        oracle.degradation.excluded, candidate.degradation.excluded,
        "{what}: degradation exclusions"
    );
    assert_eq!(
        oracle.degradation.rounds, candidate.degradation.rounds,
        "{what}: rounds"
    );
    assert_eq!(
        oracle.degradation.withheld_payments, candidate.degradation.withheld_payments,
        "{what}: withheld payments"
    );
    assert_eq!(
        format!("{oracle:?}"),
        format!("{candidate:?}"),
        "{what}: full-structure Debug equality"
    );
}

fn assert_vm_matches_threaded(cfg: &SessionConfig, what: &str) {
    let oracle = run_session(cfg).unwrap_or_else(|e| panic!("{what}: threaded failed: {e}"));
    let vm = run_session_vm(cfg).unwrap_or_else(|e| panic!("{what}: vm failed: {e}"));
    assert_outcomes_identical(&oracle, &vm, what);
}

#[test]
fn truthful_sessions_bit_identical_both_models() {
    for model in MODELS {
        let cfg = session(model, |_| Behavior::Compliant, |_| FaultPlan::None);
        assert_vm_matches_threaded(&cfg, &format!("truthful/{model:?}"));
    }
}

#[test]
fn strategic_behaviors_bit_identical_both_models() {
    for model in MODELS {
        let m = W.len();
        let orig = model
            .originator(m)
            .expect("NCP models always have an originator");
        let victim = (orig + 1) % m;
        // One deviant per session; the deviant index is chosen so the
        // behavior actually bites (originator offences on the originator,
        // everything else on a non-originator).
        let scenarios: Vec<(&str, usize, Behavior)> = vec![
            ("misreport", victim, Behavior::Misreport { factor: 1.4 }),
            ("slack", victim, Behavior::Slack { factor: 1.5 }),
            (
                "equivocate",
                victim,
                Behavior::EquivocateBids { factor: 1.3 },
            ),
            (
                "short-allocate",
                orig,
                Behavior::ShortAllocate {
                    victim,
                    shortfall: 1,
                },
            ),
            (
                "over-allocate",
                orig,
                Behavior::OverAllocate { victim, excess: 2 },
            ),
            (
                "corrupt-payments",
                victim,
                Behavior::CorruptPayments {
                    target: orig,
                    factor: 2.0,
                },
            ),
            (
                "false-accusation",
                victim,
                Behavior::FalselyAccuseAllocation,
            ),
            (
                "forged-bid",
                victim,
                Behavior::ForgeExtraBid {
                    impersonate: (victim + 1) % m,
                },
            ),
            ("non-participant", victim, Behavior::NonParticipant),
        ];
        for (name, deviant, behavior) in scenarios {
            let cfg = session(
                model,
                |i| if i == deviant { behavior } else { Behavior::Compliant },
                |_| FaultPlan::None,
            );
            assert_vm_matches_threaded(&cfg, &format!("strategic/{name}/{model:?}"));
        }
    }
}

#[test]
fn fault_plans_bit_identical_including_degradation_reports() {
    for model in MODELS {
        let m = W.len();
        let orig = model
            .originator(m)
            .expect("NCP models always have an originator");
        let faulty = (orig + 2) % m;
        let plans: Vec<(&str, FaultPlan)> = vec![
            ("crash-bidding", FaultPlan::CrashAt(Phase::Bidding)),
            ("crash-allocating", FaultPlan::CrashAt(Phase::Allocating)),
            ("crash-processing", FaultPlan::CrashAt(Phase::Processing)),
            ("crash-payments", FaultPlan::CrashAt(Phase::Payments)),
            ("mute-bidding", FaultPlan::MuteAt(Phase::Bidding)),
            ("garbage-payments", FaultPlan::GarbageAt(Phase::Payments)),
            ("delay-bidding", FaultPlan::DelayAt(Phase::Bidding, 50)),
        ];
        for (name, plan) in plans {
            let cfg = session(
                model,
                |_| Behavior::Compliant,
                |i| if i == faulty { plan } else { FaultPlan::None },
            );
            let what = format!("fault/{name}/{model:?}");
            let oracle = run_session(&cfg).unwrap_or_else(|e| panic!("{what}: threaded: {e}"));
            let vm = run_session_vm(&cfg).unwrap_or_else(|e| panic!("{what}: vm: {e}"));
            assert_outcomes_identical(&oracle, &vm, &what);
            // The crash/mute/garbage plans must actually degrade — a
            // vacuously clean pair of reports would not test the claim.
            let expect_clean = name.starts_with("delay");
            assert_eq!(
                vm.degradation.is_clean(),
                expect_clean,
                "{what}: degradation cleanliness"
            );
        }
    }
}

#[test]
fn uneven_shard_pooled_matches_threaded_per_session() {
    // 5 sessions over 4 workers: worker 0 owns sessions {0, 4}, the rest
    // one each — the non-tiling shape from the PR-3 batch-sizing bug.
    // Sessions differ (varying seeds and one injected fault) so a
    // misrouted or dropped shard cannot pass by accident.
    let cfgs: Vec<SessionConfig> = (0..5u64)
        .map(|k| {
            let mut cfg = session(
                SystemModel::NcpFe,
                |i| {
                    if k == 2 && i == 1 {
                        Behavior::Misreport { factor: 1.2 }
                    } else {
                        Behavior::Compliant
                    }
                },
                |i| {
                    if k == 3 && i == 2 {
                        FaultPlan::CrashAt(Phase::Processing)
                    } else {
                        FaultPlan::None
                    }
                },
            );
            cfg.seed = SEED + k;
            cfg
        })
        .collect();
    let pooled = run_session_pooled_with(&cfgs, 4);
    assert_eq!(pooled.len(), cfgs.len());
    for (k, (cfg, got)) in cfgs.iter().zip(&pooled).enumerate() {
        let oracle = run_session(cfg).unwrap_or_else(|e| panic!("session {k}: threaded: {e}"));
        let got = got
            .as_ref()
            .unwrap_or_else(|e| panic!("session {k}: pooled: {e}"));
        assert_outcomes_identical(&oracle, got, &format!("uneven-shard session {k}"));
    }
}
