//! Differential suite for the always-on session service
//! ([`dls_protocol::ServiceHandle`]): placement affects *when* a session
//! runs, never *what* it computes. Every outcome retrieved from the
//! service — under work stealing or static-shard placement, with the
//! per-worker scratch arena reused or rebuilt — must reproduce
//! [`dls_protocol::run_session_vm`] **bit for bit** (which the executor
//! suite in turn pins against the threaded oracle), across strategic
//! behaviors and liveness-fault plans.
//!
//! Float equality here is `to_bits` (or whole-structure `Debug` equality,
//! which formats floats as their shortest round-trip representation and is
//! therefore also bit-exact); nothing is compared with a tolerance.
//!
//! Also here: the uneven-stream regression the service satellite calls
//! for — 7 sessions over 3 workers, pooled(static) == service(stealing)
//! outcome-for-outcome.

use dls_dlt::SystemModel;
use dls_protocol::config::{Behavior, ProcessorConfig, SessionConfig};
use dls_protocol::fault::FaultPlan;
use dls_protocol::referee::Phase;
use dls_protocol::service::{Placement, ServiceConfig, ServiceHandle};
use dls_protocol::{run_session_pooled_with, run_session_vm, SessionOutcome};

const Z: f64 = 0.25;
const W: [f64; 4] = [1.0, 1.6, 2.2, 3.1];
const SEED: u64 = 31;
const BUDGET_MS: u64 = 400;

fn session(
    model: SystemModel,
    behavior_of: impl Fn(usize) -> Behavior,
    fault_of: impl Fn(usize) -> FaultPlan,
) -> SessionConfig {
    let mut b = SessionConfig::builder(model, Z)
        .seed(SEED)
        .blocks(12)
        .phase_budget_ms(BUDGET_MS);
    for (i, &w) in W.iter().enumerate() {
        b = b.processor(ProcessorConfig::new(w, behavior_of(i)).with_fault(fault_of(i)));
    }
    b.build().expect("differential config must be builder-valid")
}

/// Bit-exact outcome equality: targeted per-field assertions first (for
/// readable failures), then whole-structure `Debug` equality as the
/// catch-all (ledger journal, timeline, every degradation field).
fn assert_outcomes_identical(oracle: &SessionOutcome, candidate: &SessionOutcome, what: &str) {
    assert_eq!(oracle.status, candidate.status, "{what}: status");
    assert_eq!(
        oracle.fine.to_bits(),
        candidate.fine.to_bits(),
        "{what}: fine"
    );
    assert_eq!(oracle.messages, candidate.messages, "{what}: message stats");
    for (i, (a, b)) in oracle
        .processors
        .iter()
        .zip(&candidate.processors)
        .enumerate()
    {
        assert_eq!(
            a.alloc_fraction.to_bits(),
            b.alloc_fraction.to_bits(),
            "{what}: P{i} alloc fraction"
        );
        assert_eq!(a.fined.to_bits(), b.fined.to_bits(), "{what}: P{i} fined");
        assert_eq!(
            a.utility.to_bits(),
            b.utility.to_bits(),
            "{what}: P{i} utility"
        );
    }
    assert_eq!(
        format!("{oracle:?}"),
        format!("{candidate:?}"),
        "{what}: full-structure Debug equality"
    );
}

/// Submits `cfg` to `svc` and asserts the retrieved outcome is
/// bit-identical to a direct `run_session_vm` solve.
fn assert_service_matches_vm(svc: &ServiceHandle, cfg: &SessionConfig, what: &str) {
    let oracle = run_session_vm(cfg).unwrap_or_else(|e| panic!("{what}: vm failed: {e}"));
    let ticket = svc
        .submit(cfg.clone())
        .unwrap_or_else(|e| panic!("{what}: submit refused: {e}"));
    let done = svc
        .wait(ticket)
        .unwrap_or_else(|| panic!("{what}: service lost ticket {ticket}"));
    let got = done
        .outcome
        .unwrap_or_else(|e| panic!("{what}: service failed: {e}"));
    assert_outcomes_identical(&oracle, &got, what);
}

#[test]
fn strategic_behaviors_bit_identical_through_the_service() {
    let model = SystemModel::NcpFe;
    let m = W.len();
    let orig = model
        .originator(m)
        .expect("NCP models always have an originator");
    let victim = (orig + 1) % m;
    let scenarios: Vec<(&str, usize, Behavior)> = vec![
        ("compliant", victim, Behavior::Compliant),
        ("misreport", victim, Behavior::Misreport { factor: 1.4 }),
        ("slack", victim, Behavior::Slack { factor: 1.5 }),
        (
            "equivocate",
            victim,
            Behavior::EquivocateBids { factor: 1.3 },
        ),
        (
            "short-allocate",
            orig,
            Behavior::ShortAllocate {
                victim,
                shortfall: 1,
            },
        ),
        (
            "corrupt-payments",
            victim,
            Behavior::CorruptPayments {
                target: orig,
                factor: 2.0,
            },
        ),
        ("non-participant", victim, Behavior::NonParticipant),
    ];
    // One stealing service, kept alive across the whole matrix — the
    // steady state an always-on deployment runs in.
    let svc = ServiceHandle::start(ServiceConfig::stealing(3)).expect("service start");
    for (name, deviant, behavior) in scenarios {
        let cfg = session(
            model,
            |i| if i == deviant { behavior } else { Behavior::Compliant },
            |_| FaultPlan::None,
        );
        assert_service_matches_vm(&svc, &cfg, &format!("service/strategic/{name}"));
    }
    svc.shutdown();
}

#[test]
fn fault_plans_bit_identical_through_the_service() {
    let model = SystemModel::NcpNfe;
    let m = W.len();
    let orig = model
        .originator(m)
        .expect("NCP models always have an originator");
    let faulty = (orig + 2) % m;
    let plans: Vec<(&str, FaultPlan)> = vec![
        ("crash-bidding", FaultPlan::CrashAt(Phase::Bidding)),
        ("crash-processing", FaultPlan::CrashAt(Phase::Processing)),
        ("mute-bidding", FaultPlan::MuteAt(Phase::Bidding)),
        ("garbage-payments", FaultPlan::GarbageAt(Phase::Payments)),
        ("delay-bidding", FaultPlan::DelayAt(Phase::Bidding, 50)),
    ];
    // Static-shard placement and a fresh-arena config both take the same
    // per-session driver; alternate them across the fault matrix so both
    // service configurations face degraded re-runs.
    let stat = ServiceHandle::start(ServiceConfig::static_shard(2)).expect("service start");
    let fresh = ServiceHandle::start(ServiceConfig {
        workers: 2,
        placement: Placement::Stealing,
        reuse_scratch: false,
        ..ServiceConfig::stealing(2)
    })
    .expect("service start");
    for (i, (name, plan)) in plans.into_iter().enumerate() {
        let cfg = session(
            model,
            |_| Behavior::Compliant,
            |j| if j == faulty { plan } else { FaultPlan::None },
        );
        let svc = if i % 2 == 0 { &stat } else { &fresh };
        let what = format!("service/fault/{name}");
        assert_service_matches_vm(svc, &cfg, &what);
        // Crash/mute/garbage plans must actually degrade — a vacuously
        // clean report would not test the claim.
        let expect_clean = name.starts_with("delay");
        let vm = run_session_vm(&cfg).expect("vm solve");
        assert_eq!(
            vm.degradation.is_clean(),
            expect_clean,
            "{what}: degradation cleanliness"
        );
    }
    stat.shutdown();
    fresh.shutdown();
}

#[test]
fn uneven_stream_pooled_static_matches_service_stealing() {
    // The satellite regression: 7 sessions over 3 workers — uneven on
    // both the static shard (worker 0 owns {0, 3, 6}) and the stealing
    // service (whichever worker idles takes more). Sessions differ
    // (varying seeds, one strategic deviant, one fault plan) so a
    // misrouted, duplicated, or dropped session cannot pass by accident.
    let cfgs: Vec<SessionConfig> = (0..7u64)
        .map(|k| {
            let mut cfg = session(
                SystemModel::NcpFe,
                |i| {
                    if k == 2 && i == 1 {
                        Behavior::Misreport { factor: 1.2 }
                    } else {
                        Behavior::Compliant
                    }
                },
                |i| {
                    if k == 5 && i == 2 {
                        FaultPlan::CrashAt(Phase::Processing)
                    } else {
                        FaultPlan::None
                    }
                },
            );
            cfg.seed = SEED + k;
            cfg
        })
        .collect();

    let pooled = run_session_pooled_with(&cfgs, 3);
    assert_eq!(pooled.len(), cfgs.len());

    let svc = ServiceHandle::start(ServiceConfig::stealing(3)).expect("service start");
    let tickets: Vec<u64> = cfgs
        .iter()
        .map(|c| svc.submit(c.clone()).expect("submit refused"))
        .collect();
    for (k, (ticket, from_pool)) in tickets.iter().zip(&pooled).enumerate() {
        let done = svc
            .wait(*ticket)
            .unwrap_or_else(|| panic!("session {k}: service lost ticket {ticket}"));
        let stolen = done
            .outcome
            .unwrap_or_else(|e| panic!("session {k}: service: {e}"));
        let pooled_outcome = from_pool
            .as_ref()
            .unwrap_or_else(|e| panic!("session {k}: pooled: {e}"));
        assert_outcomes_identical(
            pooled_outcome,
            &stolen,
            &format!("uneven-stream session {k}"),
        );
    }
    svc.shutdown();
}

// --- Ticket-lifecycle edges --------------------------------------------

#[test]
fn wait_on_consumed_ticket_returns_none_promptly() {
    // A second wait on an already-taken ticket must not park until
    // shutdown: the pending set says the ticket is neither queued nor
    // running, so `wait` answers `None` immediately — even while the
    // single worker is busy with a different session.
    let svc = ServiceHandle::start(ServiceConfig::stealing(1)).expect("service start");
    let cfg = session(SystemModel::NcpFe, |_| Behavior::Compliant, |_| FaultPlan::None);
    let ticket = svc.submit(cfg.clone()).expect("submit refused");
    let first = svc.wait(ticket).expect("first wait must yield the outcome");
    first.outcome.expect("session must succeed");

    // Keep the lone worker occupied so a buggy `wait` that parks on the
    // results condvar would stay parked well past the assertion bound.
    let busy = svc.submit(cfg).expect("submit refused");
    let t0 = std::time::Instant::now();
    assert!(
        svc.wait(ticket).is_none(),
        "consumed ticket must not resolve twice"
    );
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(5),
        "wait on a consumed ticket must return promptly, not park"
    );
    assert!(svc.try_take(ticket).is_none());
    svc.wait(busy).expect("busy ticket resolves").outcome.expect("ok");
    svc.shutdown();
}

#[test]
fn try_take_racing_wait_yields_exactly_one_winner() {
    let svc = std::sync::Arc::new(
        ServiceHandle::start(ServiceConfig::stealing(2)).expect("service start"),
    );
    let cfg = session(SystemModel::NcpFe, |_| Behavior::Compliant, |_| FaultPlan::None);
    for _ in 0..8 {
        let ticket = svc.submit(cfg.clone()).expect("submit refused");
        let waiter = {
            let svc = std::sync::Arc::clone(&svc);
            std::thread::spawn(move || svc.wait(ticket).is_some())
        };
        // Poll `try_take` against the blocked waiter until one side wins.
        let mut took = false;
        loop {
            if svc.try_take(ticket).is_some() {
                took = true;
                break;
            }
            if waiter.is_finished() {
                break;
            }
            std::thread::yield_now();
        }
        let waited = waiter.join().expect("waiter must not panic");
        assert!(
            took ^ waited,
            "exactly one of try_take/wait must win the ticket (took={took}, waited={waited})"
        );
    }
    svc.shutdown();
}

#[test]
fn concurrent_submitters_during_shutdown_lose_no_accepted_ticket() {
    use dls_protocol::service::SubmitError;
    let svc = std::sync::Arc::new(
        ServiceHandle::start(ServiceConfig::stealing(2)).expect("service start"),
    );
    let cfg = session(SystemModel::NcpFe, |_| Behavior::Compliant, |_| FaultPlan::None);
    let mut submitters = Vec::new();
    for _ in 0..4 {
        let svc = std::sync::Arc::clone(&svc);
        let cfg = cfg.clone();
        submitters.push(std::thread::spawn(move || {
            let mut accepted = Vec::new();
            for _ in 0..6 {
                match svc.submit(cfg.clone()) {
                    Ok(t) => accepted.push(t),
                    // The only admissible refusal mid-race is shutdown.
                    Err(SubmitError::ShutDown) => break,
                    Err(e) => panic!("unexpected submit error: {e}"),
                }
            }
            accepted
        }));
    }
    // Race shutdown against the submitters.
    std::thread::yield_now();
    svc.shutdown();
    for s in submitters {
        for ticket in s.join().expect("submitter must not panic") {
            let done = svc.wait(ticket).unwrap_or_else(|| {
                panic!("accepted ticket {ticket} was lost across shutdown")
            });
            done.outcome
                .unwrap_or_else(|e| panic!("accepted ticket {ticket} failed: {e}"));
        }
    }
}
