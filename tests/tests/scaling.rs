//! Scale and reproducibility smoke tests: the protocol at larger m, and
//! bit-exact replay across models and seeds.

use dls::protocol::config::{Behavior, ProcessorConfig, SessionConfig};
use dls::protocol::runtime::run_session;
use dls::{SessionStatus, SystemModel};

fn rates(m: usize) -> Vec<f64> {
    (0..m).map(|i| 1.0 + (i % 5) as f64 * 0.4).collect()
}

#[test]
fn twenty_four_processor_session_completes() {
    let m = 24;
    let cfg = SessionConfig::builder(SystemModel::NcpFe, 0.05)
        .processors(rates(m).into_iter().map(|w| ProcessorConfig::new(w, Behavior::Compliant)))
        .seed(13)
        .blocks(4 * m)
        .build()
        .unwrap();
    let out = run_session(&cfg).unwrap();
    assert_eq!(out.status, SessionStatus::Completed);
    assert_eq!(out.processors.len(), m);
    // Exactly m(m-1) bid deliveries and m payment vectors.
    assert_eq!(out.messages.category("bid").0 as usize, m * (m - 1));
    assert_eq!(out.messages.category("payment-vector").0 as usize, m);
    // All blocks accounted for.
    let total: usize = out.processors.iter().map(|p| p.blocks_granted).sum();
    assert_eq!(total, 4 * m);
    assert!(out.ledger.conservation_error().abs() < 1e-9);
}

#[test]
fn deviant_detection_scales() {
    // One equivocator among 12: exactly it is fined, everyone else gets
    // F/11.
    let m = 12;
    let deviant = 7;
    let cfg = SessionConfig::builder(SystemModel::NcpNfe, 0.05)
        .processors(rates(m).into_iter().enumerate().map(|(i, w)| {
            ProcessorConfig::new(
                w,
                if i == deviant {
                    Behavior::EquivocateBids { factor: 3.0 }
                } else {
                    Behavior::Compliant
                },
            )
        }))
        .seed(13)
        .blocks(2 * m)
        .build()
        .unwrap();
    let out = run_session(&cfg).unwrap();
    assert_eq!(out.fined_processors(), vec![deviant]);
    let share = out.fine / (m - 1) as f64;
    for (i, p) in out.processors.iter().enumerate() {
        if i != deviant {
            assert!((p.rewarded - share).abs() < 1e-9, "P{}", i + 1);
        }
    }
}

#[test]
fn replay_is_bit_exact_across_models_and_seeds() {
    for model in [SystemModel::NcpFe, SystemModel::NcpNfe] {
        for seed in [0u64, 9, 14] {
            let mk = || {
                let cfg = SessionConfig::builder(model, 0.15)
                    .processors(
                        rates(5)
                            .into_iter()
                            .map(|w| ProcessorConfig::new(w, Behavior::Compliant)),
                    )
                    .seed(seed)
                    .build()
                    .unwrap();
                run_session(&cfg).unwrap()
            };
            let (a, b) = (mk(), mk());
            assert_eq!(a.status, b.status, "{model} seed {seed}");
            assert_eq!(a.makespan, b.makespan);
            for (x, y) in a.processors.iter().zip(&b.processors) {
                assert_eq!(x.utility, y.utility);
                assert_eq!(x.meter, y.meter);
                assert_eq!(x.payment.map(|q| q.total()), y.payment.map(|q| q.total()));
            }
            assert_eq!(a.messages, b.messages);
        }
    }
}

#[test]
fn different_seeds_change_keys_not_economics() {
    // Seeds affect cryptographic material only; the market outcome is
    // identical because the economics are deterministic in the config.
    let mk = |seed| {
        let cfg = SessionConfig::builder(SystemModel::NcpFe, 0.15)
            .processors(
                rates(4)
                    .into_iter()
                    .map(|w| ProcessorConfig::new(w, Behavior::Compliant)),
            )
            .seed(seed)
            .build()
            .unwrap();
        run_session(&cfg).unwrap()
    };
    let (a, b) = (mk(21), mk(22));
    for (x, y) in a.processors.iter().zip(&b.processors) {
        assert_eq!(x.utility, y.utility);
        assert_eq!(x.blocks_granted, y.blocks_granted);
    }
}
