//! Scale and reproducibility smoke tests: the protocol at larger m,
//! bit-exact replay across models and seeds, the exact payment solver at
//! benchmark scale, and the benchmark JSON schema.

use dls::protocol::config::{Behavior, ProcessorConfig, SessionConfig};
use dls::protocol::runtime::run_session;
use dls::{SessionStatus, SystemModel};
use dls_bench::multiload;
use dls_bench::payments::{render_json, run_sweep, workload, SweepConfig, SCHEMA};
use dls_bench::service;
use dls_bench::sessions;
use dls_bench::throughput;

fn rates(m: usize) -> Vec<f64> {
    (0..m).map(|i| 1.0 + (i % 5) as f64 * 0.4).collect()
}

#[test]
fn twenty_four_processor_session_completes() {
    let m = 24;
    let cfg = SessionConfig::builder(SystemModel::NcpFe, 0.05)
        .processors(rates(m).into_iter().map(|w| ProcessorConfig::new(w, Behavior::Compliant)))
        .seed(13)
        .blocks(4 * m)
        .build()
        .unwrap();
    let out = run_session(&cfg).unwrap();
    assert_eq!(out.status, SessionStatus::Completed);
    assert_eq!(out.processors.len(), m);
    // Exactly m(m-1) bid deliveries and m payment vectors.
    assert_eq!(out.messages.category("bid").0 as usize, m * (m - 1));
    assert_eq!(out.messages.category("payment-vector").0 as usize, m);
    // All blocks accounted for.
    let total: usize = out.processors.iter().map(|p| p.blocks_granted).sum();
    assert_eq!(total, 4 * m);
    assert!(out.ledger.conservation_error().abs() < 1e-9);
}

#[test]
fn deviant_detection_scales() {
    // One equivocator among 12: exactly it is fined, everyone else gets
    // F/11.
    let m = 12;
    let deviant = 7;
    let cfg = SessionConfig::builder(SystemModel::NcpNfe, 0.05)
        .processors(rates(m).into_iter().enumerate().map(|(i, w)| {
            ProcessorConfig::new(
                w,
                if i == deviant {
                    Behavior::EquivocateBids { factor: 3.0 }
                } else {
                    Behavior::Compliant
                },
            )
        }))
        .seed(13)
        .blocks(2 * m)
        .build()
        .unwrap();
    let out = run_session(&cfg).unwrap();
    assert_eq!(out.fined_processors(), vec![deviant]);
    let share = out.fine / (m - 1) as f64;
    for (i, p) in out.processors.iter().enumerate() {
        if i != deviant {
            assert!((p.rewarded - share).abs() < 1e-9, "P{}", i + 1);
        }
    }
}

#[test]
fn replay_is_bit_exact_across_models_and_seeds() {
    for model in [SystemModel::NcpFe, SystemModel::NcpNfe] {
        for seed in [0u64, 9, 14] {
            let mk = || {
                let cfg = SessionConfig::builder(model, 0.15)
                    .processors(
                        rates(5)
                            .into_iter()
                            .map(|w| ProcessorConfig::new(w, Behavior::Compliant)),
                    )
                    .seed(seed)
                    .build()
                    .unwrap();
                run_session(&cfg).unwrap()
            };
            let (a, b) = (mk(), mk());
            assert_eq!(a.status, b.status, "{model} seed {seed}");
            assert_eq!(a.makespan, b.makespan);
            for (x, y) in a.processors.iter().zip(&b.processors) {
                assert_eq!(x.utility, y.utility);
                assert_eq!(x.meter, y.meter);
                assert_eq!(x.payment.map(|q| q.total()), y.payment.map(|q| q.total()));
            }
            assert_eq!(a.messages, b.messages);
        }
    }
}

#[test]
fn different_seeds_change_keys_not_economics() {
    // Seeds affect cryptographic material only; the market outcome is
    // identical because the economics are deterministic in the config.
    let mk = |seed| {
        let cfg = SessionConfig::builder(SystemModel::NcpFe, 0.15)
            .processors(
                rates(4)
                    .into_iter()
                    .map(|w| ProcessorConfig::new(w, Behavior::Compliant)),
            )
            .seed(seed)
            .build()
            .unwrap();
        run_session(&cfg).unwrap()
    };
    let (a, b) = (mk(21), mk(22));
    for (x, y) in a.processors.iter().zip(&b.processors) {
        assert_eq!(x.utility, y.utility);
        assert_eq!(x.blocks_granted, y.blocks_granted);
    }
}

/// The O(m) exact payment path must stay tractable at benchmark scale.
/// m = 256 exact payments per model, with a wall-clock budget generous
/// enough for debug builds and loaded CI machines — the point is to catch
/// an accidental return to Θ(m²) (which blows this budget by orders of
/// magnitude), not to measure.
#[test]
fn exact_payments_complete_at_m_256() {
    use dls::mechanism::exact::compute_payments_exact;
    use dls::num::Rational;

    let cfg = SweepConfig::full();
    let start = std::time::Instant::now();
    for model in dls::dlt::ALL_MODELS {
        let (bids, observed) = workload(&cfg, 256);
        let to_rat = |xs: &[f64]| -> Vec<Rational> {
            xs.iter().map(|&x| Rational::from_f64(x).unwrap()).collect()
        };
        let payments = compute_payments_exact(
            model,
            &Rational::from_f64(cfg.z).unwrap(),
            &to_rat(&bids),
            &to_rat(&observed),
        )
        .unwrap();
        assert_eq!(payments.len(), 256);
        // Truthful non-slackers must not lose (Theorem 3.2, exactly). The
        // NCP originators are exempt: removing the head processor promotes
        // its successor into the free-computation originator slot, so the
        // reduced bus can be *faster* and the originator's first bonus term
        // smaller than its second (see `removing_nfe_originator_can_speed_up`
        // in dls-dlt; the FE analogue is symmetric).
        let originator = |i: usize| match model {
            SystemModel::Cp => false,
            SystemModel::NcpFe => i == 0,
            SystemModel::NcpNfe => i == 255,
        };
        for (i, p) in payments.iter().enumerate() {
            if i % 7 != 3 && !originator(i) {
                assert!(!p.bonus.is_negative(), "{model}: agent {i} bonus < 0");
            }
        }
    }
    assert!(
        start.elapsed() < std::time::Duration::from_secs(120),
        "exact m=256 blew the generous wall-clock budget: {:?}",
        start.elapsed()
    );
}

/// Minimal structural validation of a payments-benchmark JSON document
/// against the schema documented in EXPERIMENTS.md. Hand-rolled on purpose:
/// the workspace has no JSON dependency, and `render_json` emits one entry
/// per line, so line-level checks are exact.
fn validate_payments_json(json: &str) {
    assert!(
        json.contains(&format!("\"schema\": \"{SCHEMA}\"")),
        "schema marker missing"
    );
    assert!(json.contains("\"config\":"), "config object missing");
    let models = ["\"cp\"", "\"ncp-fe\"", "\"ncp-nfe\""];
    let paths = [
        "\"f64-fast\"",
        "\"f64-naive\"",
        "\"exact-fast\"",
        "\"exact-naive\"",
        "\"exact-parallel\"",
    ];
    let mut entries = 0;
    for line in json.lines() {
        let line = line.trim();
        if !line.starts_with("{\"model\"") {
            continue;
        }
        entries += 1;
        for key in [
            "\"model\": ",
            "\"m\": ",
            "\"path\": ",
            "\"ns_per_op\": ",
            "\"peak_rational_bits\": ",
            "\"extrapolated\": ",
        ] {
            assert!(line.contains(key), "entry missing {key}: {line}");
        }
        assert!(
            models.iter().any(|m| line.contains(&format!("\"model\": {m}"))),
            "unknown model in {line}"
        );
        assert!(
            paths.iter().any(|p| line.contains(&format!("\"path\": {p}"))),
            "unknown path in {line}"
        );
        assert!(
            line.contains("\"extrapolated\": true") || line.contains("\"extrapolated\": false"),
            "extrapolated not boolean in {line}"
        );
    }
    assert!(entries > 0, "no entries found");
    let opens = json.matches('{').count();
    assert_eq!(opens, json.matches('}').count(), "unbalanced braces");
}

/// A quick sweep must emit a document matching the documented schema, and
/// the committed `BENCH_payments.json` (when present) must still match it.
#[test]
fn bench_json_matches_documented_schema() {
    let cfg = SweepConfig::quick();
    let entries = run_sweep(&cfg);
    // Every (model, path) combination the quick config asks for is present.
    for model in ["cp", "ncp-fe", "ncp-nfe"] {
        for path in ["f64-fast", "f64-naive", "exact-fast", "exact-naive"] {
            assert!(
                entries.iter().any(|e| e.model == model && e.path == path),
                "missing {model}/{path}"
            );
        }
    }
    // Quick config extrapolates naive to m = 16.
    assert!(entries
        .iter()
        .any(|e| e.path == "exact-naive" && e.m == 16 && e.extrapolated));
    validate_payments_json(&render_json(&cfg, &entries));

    let committed = concat!(env!("CARGO_MANIFEST_DIR"), "/../BENCH_payments.json");
    match std::fs::read_to_string(committed) {
        Ok(json) => validate_payments_json(&json),
        Err(_) => eprintln!("BENCH_payments.json not present; skipping committed-file check"),
    }
}

/// Structural validation of a throughput-benchmark JSON document against
/// the schema documented in EXPERIMENTS.md — same hand-rolled line-level
/// style as [`validate_payments_json`].
fn validate_throughput_json(json: &str) {
    assert!(
        json.contains(&format!("\"schema\": \"{}\"", throughput::SCHEMA)),
        "schema marker missing"
    );
    assert!(json.contains("\"config\":"), "config object missing");
    let models = ["\"cp\"", "\"ncp-fe\"", "\"ncp-nfe\""];
    let kinds = ["\"auction\"", "\"bid-update\""];
    let paths = [
        "\"batched\"",
        "\"incremental\"",
        "\"engine-rebuild\"",
        "\"full-recompute\"",
    ];
    let mut entries = 0;
    for line in json.lines() {
        let line = line.trim();
        if !line.starts_with("{\"model\"") {
            continue;
        }
        entries += 1;
        for key in [
            "\"model\": ",
            "\"m\": ",
            "\"kind\": ",
            "\"path\": ",
            "\"batch\": ",
            "\"ns_per_op\": ",
            "\"ops_per_sec\": ",
        ] {
            assert!(line.contains(key), "entry missing {key}: {line}");
        }
        assert!(
            models.iter().any(|m| line.contains(&format!("\"model\": {m}"))),
            "unknown model in {line}"
        );
        assert!(
            kinds.iter().any(|k| line.contains(&format!("\"kind\": {k}"))),
            "unknown kind in {line}"
        );
        assert!(
            paths.iter().any(|p| line.contains(&format!("\"path\": {p}"))),
            "unknown path in {line}"
        );
    }
    assert!(entries > 0, "no entries found");
    let opens = json.matches('{').count();
    assert_eq!(opens, json.matches('}').count(), "unbalanced braces");
}

/// A quick throughput sweep must cover every (model, kind, path) cell of
/// its config, emit a document matching the documented schema, and show the
/// incremental bid-update path no slower than the full-recompute fallback
/// at m = 1024 — the structural property the tentpole exists for. The
/// committed `BENCH_throughput.json` (when present) must match the schema
/// too.
#[test]
fn throughput_bench_json_matches_documented_schema() {
    let cfg = throughput::ThroughputConfig::quick();
    let entries = throughput::run_sweep(&cfg).expect("quick sweep must succeed");
    for model in ["cp", "ncp-fe", "ncp-nfe"] {
        for &m in &cfg.auction_sizes {
            for &batch in &cfg.batch_sizes {
                assert!(
                    entries.iter().any(|e| e.model == model
                        && e.kind == "auction"
                        && e.m == m
                        && e.batch == batch),
                    "missing {model}/auction m={m} batch={batch}"
                );
            }
        }
        for &m in &cfg.update_sizes {
            for path in ["incremental", "engine-rebuild", "full-recompute"] {
                assert!(
                    entries.iter().any(|e| e.model == model
                        && e.kind == "bid-update"
                        && e.m == m
                        && e.path == path),
                    "missing {model}/bid-update/{path} m={m}"
                );
            }
        }
        // The incremental splice must not lose to the full rebuild at the
        // largest quick size. Generous: asserts >= 1x (no regression to a
        // pessimized splice), not the >= 5x the release benchmark shows —
        // debug builds and loaded CI machines add noise.
        let speedup = throughput::update_speedup(&entries, model, 1024)
            .expect("m=1024 bid-update entries present");
        assert!(
            speedup >= 1.0,
            "{model}: incremental bid updates slower than full recompute at m=1024: {speedup:.2}x"
        );
    }
    validate_throughput_json(&throughput::render_json(&cfg, &entries));

    let committed = concat!(env!("CARGO_MANIFEST_DIR"), "/../BENCH_throughput.json");
    match std::fs::read_to_string(committed) {
        Ok(json) => validate_throughput_json(&json),
        Err(_) => eprintln!("BENCH_throughput.json not present; skipping committed-file check"),
    }
}

/// Structural validation of a sessions-benchmark JSON document against the
/// schema documented in EXPERIMENTS.md — same hand-rolled line-level style
/// as [`validate_payments_json`].
fn validate_sessions_json(json: &str) {
    assert!(
        json.contains(&format!("\"schema\": \"{}\"", sessions::SCHEMA)),
        "schema marker missing"
    );
    assert!(json.contains("\"config\":"), "config object missing");
    let mut entries = 0;
    for line in json.lines() {
        let line = line.trim();
        if !line.starts_with("{\"model\"") {
            continue;
        }
        entries += 1;
        for key in [
            "\"model\": ",
            "\"m\": ",
            "\"batch\": ",
            "\"path\": ",
            "\"verify\": ",
            "\"sessions_timed\": ",
            "\"ns_per_session\": ",
            "\"sessions_per_sec\": ",
        ] {
            assert!(line.contains(key), "entry missing {key}: {line}");
        }
        assert!(
            line.contains("\"path\": \"pooled\"") || line.contains("\"path\": \"threaded\""),
            "unknown path in {line}"
        );
        assert!(
            line.contains("\"verify\": \"amortized\"")
                || line.contains("\"verify\": \"per-receiver\""),
            "unknown verify profile in {line}"
        );
    }
    assert!(entries > 0, "no entries found");
    let opens = json.matches('{').count();
    assert_eq!(opens, json.matches('}').count(), "unbalanced braces");
}

/// Extracts `ns_per_session` from the committed-JSON entry matching
/// `(m, batch, path, verify)`, if present.
fn committed_ns_per_session(
    json: &str,
    m: usize,
    batch: usize,
    path: &str,
    verify: &str,
) -> Option<f64> {
    for line in json.lines() {
        let line = line.trim();
        if !line.starts_with("{\"model\"")
            || !line.contains(&format!("\"m\": {m},"))
            || !line.contains(&format!("\"batch\": {batch},"))
            || !line.contains(&format!("\"path\": \"{path}\""))
            || !line.contains(&format!("\"verify\": \"{verify}\""))
        {
            continue;
        }
        let tail = line.split("\"ns_per_session\": ").nth(1)?;
        let num: String = tail
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
            .collect();
        return num.parse().ok();
    }
    None
}

/// A quick sessions sweep must cover every (m, batch, path, verify) cell
/// of its config, emit a document matching the documented schema, and show
/// the pooled executor no slower than the threaded runtime at the largest
/// quick cell. The committed `BENCH_sessions.json` (when present) must
/// match the schema and carry both headlines: the pooled executor at
/// least 10× the threaded runtime's sessions/sec at m = 16, batch = 1024,
/// and amortized verification at least 5× the per-receiver `pow_mod`
/// baseline at m = 64 — the cell where the Θ(m²) broadcast makes
/// per-receiver verification the dominant cost.
#[test]
fn sessions_bench_json_matches_documented_schema() {
    let cfg = sessions::SessionsConfig::quick();
    let entries = sessions::run_sweep(&cfg).expect("quick sweep must succeed");
    for &m in &cfg.m_sizes {
        for &batch in &cfg.batch_sizes {
            for (path, verify) in [
                ("pooled", "amortized"),
                ("pooled", "per-receiver"),
                ("threaded", "amortized"),
            ] {
                assert!(
                    entries.iter().any(|e| e.m == m
                        && e.batch == batch
                        && e.path == path
                        && e.verify == verify),
                    "missing {path}/{verify} m={m} batch={batch}"
                );
            }
        }
    }
    let (&m, &batch) = (
        cfg.m_sizes.iter().max().expect("quick config has sizes"),
        cfg.batch_sizes.iter().max().expect("quick config has batches"),
    );
    // Generous in-test bound (debug build, loaded CI): no regression to a
    // pooled path slower than spawning m+1 threads per session. The real
    // ≥ 10× criterion is asserted against the committed release JSON below.
    let speedup = sessions::pooled_speedup(&entries, m, batch)
        .expect("largest quick cell present on both paths");
    assert!(
        speedup >= 1.0,
        "pooled executor slower than threaded runtime at m={m} batch={batch}: {speedup:.2}x"
    );
    validate_sessions_json(&sessions::render_json(&cfg, &entries));

    let committed = concat!(env!("CARGO_MANIFEST_DIR"), "/../BENCH_sessions.json");
    match std::fs::read_to_string(committed) {
        Ok(json) => {
            validate_sessions_json(&json);
            let pooled = committed_ns_per_session(&json, 16, 1024, "pooled", "amortized")
                .expect("committed file has the pooled amortized m=16 batch=1024 cell");
            let threaded = committed_ns_per_session(&json, 16, 1024, "threaded", "amortized")
                .expect("committed file has the threaded amortized m=16 batch=1024 cell");
            assert!(
                pooled > 0.0 && threaded / pooled >= 10.0,
                "committed BENCH_sessions.json no longer shows the >= 10x pooled speedup \
                 at m=16 batch=1024: {:.1}x",
                threaded / pooled
            );
            let amortized = committed_ns_per_session(&json, 64, 1024, "pooled", "amortized")
                .expect("committed file has the pooled amortized m=64 batch=1024 cell");
            let naive = committed_ns_per_session(&json, 64, 1024, "pooled", "per-receiver")
                .expect("committed file has the pooled per-receiver m=64 batch=1024 cell");
            assert!(
                amortized > 0.0 && naive / amortized >= 5.0,
                "committed BENCH_sessions.json no longer shows the >= 5x amortized \
                 verification speedup at m=64 batch=1024: {:.1}x",
                naive / amortized
            );
        }
        Err(_) => eprintln!("BENCH_sessions.json not present; skipping committed-file check"),
    }
}

/// Structural validation of a service-benchmark JSON document against the
/// schema documented in EXPERIMENTS.md — same hand-rolled line-level style
/// as [`validate_sessions_json`].
fn validate_service_json(json: &str) {
    assert!(
        json.contains(&format!("\"schema\": \"{}\"", service::SCHEMA)),
        "schema marker missing"
    );
    assert!(json.contains("\"config\":"), "config object missing");
    let mut entries = 0;
    let mut paced = 0;
    let mut churn = 0;
    for line in json.lines() {
        let line = line.trim();
        if !line.starts_with("{\"mix\"") {
            continue;
        }
        entries += 1;
        for key in [
            "\"mix\": ",
            "\"mode\": ",
            "\"path\": ",
            "\"scratch\": ",
            "\"batch\": ",
            "\"workers\": ",
            "\"arrival_per_sec\": ",
            "\"sessions_per_sec\": ",
            "\"p50_ns\": ",
            "\"p95_ns\": ",
            "\"p99_ns\": ",
            "\"max_ns\": ",
            "\"rss_mb\": ",
            "\"kill_every\": ",
            "\"kills\": ",
            "\"respawns\": ",
            "\"recovery_max_ns\": ",
            "\"lost\": ",
        ] {
            assert!(line.contains(key), "entry missing {key}: {line}");
        }
        // The no-lost-ticket invariant is part of the schema: a document
        // with a nonzero `lost` column must never be committed (the
        // sweep itself errors out before writing one).
        assert!(
            line.contains("\"lost\": 0}") || line.contains("\"lost\": 0,"),
            "entry discloses lost tickets: {line}"
        );
        if !line.contains("\"kill_every\": 0,") {
            churn += 1;
        }
        assert!(
            line.contains("\"mix\": \"uniform\"") || line.contains("\"mix\": \"skewed\""),
            "unknown mix in {line}"
        );
        assert!(
            line.contains("\"mode\": \"closed\"") || line.contains("\"mode\": \"paced\""),
            "unknown mode in {line}"
        );
        assert!(
            line.contains("\"path\": \"service-steal\"")
                || line.contains("\"path\": \"service-static\"")
                || line.contains("\"path\": \"pooled-static\""),
            "unknown path in {line}"
        );
        assert!(
            line.contains("\"scratch\": \"reused\"") || line.contains("\"scratch\": \"fresh\""),
            "unknown scratch column in {line}"
        );
        if line.contains("\"mode\": \"paced\"") {
            paced += 1;
        }
    }
    assert!(entries > 0, "no entries found");
    assert!(paced >= 2, "paced cells missing (both service paths expected)");
    assert!(
        churn >= 2,
        "kill-churn cells missing (both service paths expected)"
    );
    let opens = json.matches('{').count();
    assert_eq!(opens, json.matches('}').count(), "unbalanced braces");
}

/// Extracts a numeric field from the committed service-JSON entry matching
/// `(mix, mode, path, scratch)`, if present. `churn` selects between the
/// kill-churn re-run of a cell (`kill_every > 0`) and its fault-free
/// sibling, which share all four identifying columns.
fn committed_service_field(
    json: &str,
    mix: &str,
    mode: &str,
    path: &str,
    scratch: &str,
    churn: bool,
    field: &str,
) -> Option<f64> {
    for line in json.lines() {
        let line = line.trim();
        if !line.starts_with("{\"mix\"")
            || !line.contains(&format!("\"mix\": \"{mix}\""))
            || !line.contains(&format!("\"mode\": \"{mode}\""))
            || !line.contains(&format!("\"path\": \"{path}\""))
            || !line.contains(&format!("\"scratch\": \"{scratch}\""))
            || line.contains("\"kill_every\": 0,") == churn
        {
            continue;
        }
        let tail = line.split(&format!("\"{field}\": ")).nth(1)?;
        let num: String = tail
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
            .collect();
        return num.parse().ok();
    }
    None
}

/// A quick service sweep must cover every documented cell shape, emit a
/// document matching the schema, and show work stealing beating static
/// sharding on paced tail latency. The committed `BENCH_service.json`
/// (when present) must match the schema and carry the two acceptance
/// headlines: on the paced skewed mix, stealing's p99 latency at most
/// half of static sharding's at equal worker count; and on the uniform
/// closed control, the service's sessions/sec no worse than the pooled
/// batch baseline (0.95 floor: the same per-session driver plus ticket
/// machinery, measured on a shared box). Schema v2 adds the kill-churn
/// acceptance: churn cells present on both service paths, zero lost
/// tickets anywhere, supervisor respawns covering every kill, and the
/// committed churn p99 within 5x of the fault-free sibling cell.
#[test]
fn service_bench_json_matches_documented_schema() {
    let cfg = service::ServiceBenchConfig::quick();
    let entries = service::run_sweep(&cfg).expect("quick service sweep must succeed");
    for (mix, mode, path) in [
        ("uniform", "closed", "service-steal"),
        ("uniform", "closed", "service-static"),
        ("uniform", "closed", "pooled-static"),
        ("skewed", "closed", "service-steal"),
        ("skewed", "closed", "service-static"),
        ("skewed", "paced", "service-steal"),
        ("skewed", "paced", "service-static"),
    ] {
        assert!(
            entries
                .iter()
                .any(|e| e.mix == mix && e.mode == mode && e.path == path),
            "missing cell {mix}/{mode}/{path}"
        );
    }
    assert!(
        entries.iter().any(|e| e.scratch == "fresh"),
        "scratch-arena disclosure cell missing"
    );
    // Kill-churn cells: present on both service paths, with the plan
    // actually firing, the supervisor actually healing, and — the whole
    // point — zero lost tickets anywhere in the sweep.
    for path in ["service-steal", "service-static"] {
        let churn = entries
            .iter()
            .find(|e| e.kill_every > 0 && e.path == path)
            .unwrap_or_else(|| panic!("kill-churn cell missing for {path}"));
        assert!(churn.kills >= 1, "{path}: churn plan never killed a worker");
        assert!(
            churn.respawns >= churn.kills,
            "{path}: {} kills but only {} respawns — the supervisor left slots dead",
            churn.kills,
            churn.respawns
        );
        assert!(
            churn.recovery_max_ns > 0,
            "{path}: kills recorded but no recovery latency measured"
        );
    }
    assert!(
        entries.iter().all(|e| e.lost == 0),
        "sweep lost accepted tickets"
    );
    service::churn_p99_ratio(&entries)
        .expect("churn and fault-free skewed closed stealing cells must pair by batch");
    // Latency capture must produce ordered, non-degenerate percentiles on
    // the paced cells.
    for e in entries
        .iter()
        .filter(|e| e.mode == "paced" || e.path != "pooled-static")
    {
        assert!(
            e.p50_ns <= e.p95_ns && e.p95_ns <= e.p99_ns && e.p99_ns <= e.max_ns,
            "latency percentiles out of order in {}/{}/{}",
            e.mix,
            e.mode,
            e.path
        );
        assert!(e.p50_ns > 0, "zero p50 in {}/{}/{}", e.mix, e.mode, e.path);
    }
    // Generous in-test bound (debug build, loaded CI): stealing must at
    // least not lose to static sharding on paced tail latency — the
    // structural concentration effect is ~4-5× in release, so parity is a
    // red flag, not noise. The real ≥ 2× criterion is asserted against
    // the committed release JSON below.
    let improvement = service::p99_improvement(&entries)
        .expect("paced cells present on both service paths");
    assert!(
        improvement >= 1.0,
        "work stealing worse than static sharding on paced skewed p99: {improvement:.2}x"
    );
    validate_service_json(&service::render_json(&cfg, &entries));

    let committed = concat!(env!("CARGO_MANIFEST_DIR"), "/../BENCH_service.json");
    match std::fs::read_to_string(committed) {
        Ok(json) => {
            validate_service_json(&json);
            let steal_p99 = committed_service_field(
                &json, "skewed", "paced", "service-steal", "reused", false, "p99_ns",
            )
            .expect("committed file has the paced stealing cell");
            let static_p99 = committed_service_field(
                &json, "skewed", "paced", "service-static", "reused", false, "p99_ns",
            )
            .expect("committed file has the paced static cell");
            assert!(
                steal_p99 > 0.0 && static_p99 / steal_p99 >= 2.0,
                "committed BENCH_service.json no longer shows the >= 2x p99 improvement \
                 from work stealing on the skewed paced mix: {:.2}x",
                static_p99 / steal_p99
            );
            let svc_rate = committed_service_field(
                &json, "uniform", "closed", "service-steal", "reused", false, "sessions_per_sec",
            )
            .expect("committed file has the uniform closed stealing cell");
            let pooled_rate = committed_service_field(
                &json, "uniform", "closed", "pooled-static", "reused", false, "sessions_per_sec",
            )
            .expect("committed file has the uniform closed pooled baseline");
            assert!(
                pooled_rate > 0.0 && svc_rate / pooled_rate >= 0.95,
                "committed BENCH_service.json shows the service losing to the pooled \
                 batch baseline on the uniform control: {:.2}x",
                svc_rate / pooled_rate
            );
            // Kill-churn acceptance: the faulted stealing cell's p99 stays
            // within 5x of its fault-free sibling at the same batch (the
            // supervisor requeues around kills instead of head-of-line
            // blocking the stream), and the worst death->respawn recovery
            // stays sub-second on a loaded box.
            let churn_p99 = committed_service_field(
                &json, "skewed", "closed", "service-steal", "reused", true, "p99_ns",
            )
            .expect("committed file has the kill-churn stealing cell");
            let base_p99 = committed_service_field(
                &json, "skewed", "closed", "service-steal", "reused", false, "p99_ns",
            )
            .expect("committed file has the fault-free skewed closed stealing cell");
            assert!(
                base_p99 > 0.0 && churn_p99 / base_p99 <= 5.0,
                "committed BENCH_service.json shows kill-churn inflating skewed closed \
                 p99 beyond the 5x acceptance bound: {:.2}x",
                churn_p99 / base_p99
            );
            for path in ["service-steal", "service-static"] {
                let recovery = committed_service_field(
                    &json, "skewed", "closed", path, "reused", true, "recovery_max_ns",
                )
                .unwrap_or_else(|| panic!("committed file has the {path} kill-churn cell"));
                assert!(
                    recovery > 0.0 && recovery <= 1e9,
                    "{path}: worst death->respawn recovery latency out of bounds: {recovery}ns"
                );
            }
        }
        Err(_) => eprintln!("BENCH_service.json not present; skipping committed-file check"),
    }
}

/// Structural validation of a multiload-benchmark JSON document against
/// the schema documented in EXPERIMENTS.md — same hand-rolled line-level
/// style as [`validate_sessions_json`].
fn validate_multiload_json(json: &str) {
    assert!(
        json.contains(&format!("\"schema\": \"{}\"", multiload::SCHEMA)),
        "schema marker missing"
    );
    assert!(json.contains("\"config\":"), "config object missing");
    let mut entries = 0;
    let mut sessions = 0;
    for line in json.lines() {
        let line = line.trim();
        if !line.starts_with("{\"model\"") {
            continue;
        }
        entries += 1;
        for key in [
            "\"model\": ",
            "\"m\": ",
            "\"k\": ",
            "\"path\": ",
            "\"ops\": ",
            "\"ns_per_op\": ",
            "\"per_load_ns\": ",
            "\"loads_per_sec\": ",
        ] {
            assert!(line.contains(key), "entry missing {key}: {line}");
        }
        assert!(
            line.contains("\"model\": \"cp\"")
                || line.contains("\"model\": \"ncp-fe\"")
                || line.contains("\"model\": \"ncp-nfe\""),
            "unknown model in {line}"
        );
        assert!(
            line.contains("\"path\": \"splice\"")
                || line.contains("\"path\": \"rebuild\"")
                || line.contains("\"path\": \"resolve\"")
                || line.contains("\"path\": \"session-vm\""),
            "unknown path in {line}"
        );
        if line.contains("\"path\": \"session-vm\"") {
            sessions += 1;
        }
    }
    assert!(entries > 0, "no entries found");
    assert!(sessions > 0, "protocol-level session-vm cells missing");
    let opens = json.matches('{').count();
    assert_eq!(opens, json.matches('}').count(), "unbalanced braces");
}

/// Extracts a numeric field from the committed multiload-JSON entry
/// matching `(model, m, k, path)`, if present.
fn committed_multiload_field(
    json: &str,
    model: &str,
    m: usize,
    k: usize,
    path: &str,
    field: &str,
) -> Option<f64> {
    for line in json.lines() {
        let line = line.trim();
        if !line.starts_with("{\"model\"")
            || !line.contains(&format!("\"model\": \"{model}\""))
            || !line.contains(&format!("\"m\": {m},"))
            || !line.contains(&format!("\"k\": {k},"))
            || !line.contains(&format!("\"path\": \"{path}\""))
        {
            continue;
        }
        let tail = line.split(&format!("\"{field}\": ")).nth(1)?;
        let num: String = tail
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
            .collect();
        return num.parse().ok();
    }
    None
}

/// A quick multiload sweep must cover every documented cell shape, emit a
/// document matching the schema, and never show the splice path losing to
/// the k-independent-solves baseline. The committed `BENCH_multiload.json`
/// (when present) must match the schema and carry the acceptance
/// headline: the splice path at least 3x the k-independent-solves
/// baseline in loads/sec at k = 64 on the largest market, for every
/// model.
#[test]
fn multiload_bench_json_matches_documented_schema() {
    let cfg = multiload::MultiloadConfig::quick();
    let entries = multiload::run_sweep(&cfg).expect("quick multiload sweep must succeed");
    for model in ["cp", "ncp-fe", "ncp-nfe"] {
        for &m in &cfg.m_sizes {
            for &k in &cfg.k_sizes {
                for path in ["splice", "rebuild", "resolve"] {
                    assert!(
                        entries.iter().any(|e| e.model == model
                            && e.m == m
                            && e.k == k
                            && e.path == path),
                        "missing {model} m={m} k={k} {path}"
                    );
                }
            }
        }
    }
    for &k in &cfg.session_k {
        assert!(
            entries
                .iter()
                .any(|e| e.path == "session-vm" && e.k == k),
            "missing session-vm k={k}"
        );
    }
    let &m = cfg.m_sizes.iter().max().expect("quick config has sizes");
    let &k = cfg.k_sizes.iter().max().expect("quick config has k sizes");
    for model in ["cp", "ncp-fe", "ncp-nfe"] {
        // Generous in-test bound (debug build, loaded CI): the warm
        // splice must at least match k from-scratch re-solves. The real
        // >= 3x criterion is asserted against the committed release JSON
        // below.
        let speedup = multiload::splice_speedup(&entries, model, m, k)
            .expect("largest quick cell present on both paths");
        assert!(
            speedup >= 1.0,
            "splice slower than k independent solves for {model} at m={m} k={k}: {speedup:.2}x"
        );
    }
    validate_multiload_json(&multiload::render_json(&cfg, &entries));

    let committed = concat!(env!("CARGO_MANIFEST_DIR"), "/../BENCH_multiload.json");
    match std::fs::read_to_string(committed) {
        Ok(json) => {
            validate_multiload_json(&json);
            for model in ["cp", "ncp-fe", "ncp-nfe"] {
                let splice = committed_multiload_field(
                    &json, model, 1024, 64, "splice", "loads_per_sec",
                )
                .expect("committed file has the m=1024 k=64 splice cell");
                let resolve = committed_multiload_field(
                    &json, model, 1024, 64, "resolve", "loads_per_sec",
                )
                .expect("committed file has the m=1024 k=64 resolve cell");
                assert!(
                    resolve > 0.0 && splice / resolve >= 3.0,
                    "committed BENCH_multiload.json no longer shows the >= 3x splice \
                     speedup over k independent solves for {model} at m=1024 k=64: {:.2}x",
                    splice / resolve
                );
            }
        }
        Err(_) => eprintln!("BENCH_multiload.json not present; skipping committed-file check"),
    }
}
