//! Cross-crate integration: the closed-form DLT solver, the discrete-event
//! simulator, the trusted DLS-BL mechanism, and the distributed DLS-BL-NCP
//! protocol must all tell the same story about the same market.

use dls::mechanism::{AgentSpec, Market};
use dls::netsim::{simulate, SessionSpec};
use dls::dlt::{optimal, BusParams};
use dls::{Behavior, Session, SessionStatus, SystemModel};

const Z: f64 = 0.25;
const W: [f64; 4] = [1.0, 1.4, 2.0, 2.8];

#[test]
fn closed_form_simulator_and_protocol_agree_on_makespan() {
    for model in [SystemModel::NcpFe, SystemModel::NcpNfe] {
        let params = BusParams::new(Z, W.to_vec()).unwrap();
        let closed = optimal::optimal_makespan(model, &params);

        let alloc = optimal::fractions(model, &params);
        let sim = simulate(&SessionSpec::new(model, params, alloc));
        assert!((sim.makespan - closed).abs() < 1e-12, "{model}: simulator");

        let mut s = Session::new(model, Z).seed(3).blocks(400);
        for w in W {
            s = s.worker(w);
        }
        let out = s.run().unwrap();
        assert_eq!(out.status, SessionStatus::Completed);
        let protocol_mk = out.makespan.unwrap();
        // Block granularity (400 blocks) bounds the discretization error.
        assert!(
            (protocol_mk - closed).abs() / closed < 0.02,
            "{model}: protocol {protocol_mk} vs closed {closed}"
        );
    }
}

#[test]
fn protocol_payments_match_trusted_mechanism() {
    // The distributed payment computation must coincide with what the
    // trusted DLS-BL mechanism would pay on the same market — that is the
    // point of DLS-BL-NCP (Theorem 5.2's proof reduces to it).
    let model = SystemModel::NcpFe;
    let mut s = Session::new(model, Z).seed(3).blocks(800);
    for w in W {
        s = s.worker(w);
    }
    let out = s.run().unwrap();

    let market = Market::new(
        model,
        Z,
        W.iter().map(|&w| AgentSpec::truthful(w)).collect(),
    )
    .unwrap();
    let trusted = market.run();

    for i in 0..W.len() {
        let p = out.processors[i].payment.unwrap();
        let t = trusted.payments[i];
        // Block rounding (800 blocks) keeps observed rates within ~1%.
        assert!(
            (p.compensation - t.compensation).abs() < 0.01 * t.compensation.abs().max(0.01),
            "P{}: compensation {} vs {}",
            i + 1,
            p.compensation,
            t.compensation
        );
        assert!(
            (p.bonus - t.bonus).abs() < 0.02 * t.bonus.abs().max(0.02),
            "P{}: bonus {} vs {}",
            i + 1,
            p.bonus,
            t.bonus
        );
    }
}

#[test]
fn protocol_utilities_track_mechanism_utilities() {
    let model = SystemModel::NcpFe;
    let mut s = Session::new(model, Z).seed(5).blocks(800);
    for w in W {
        s = s.worker(w);
    }
    let out = s.run().unwrap();
    let market = Market::new(
        model,
        Z,
        W.iter().map(|&w| AgentSpec::truthful(w)).collect(),
    )
    .unwrap();
    let trusted = market.run();
    for i in 0..W.len() {
        assert!(
            (out.utility(i) - trusted.utility(i)).abs() < 0.02 * trusted.utility(i).abs().max(0.02),
            "P{}: {} vs {}",
            i + 1,
            out.utility(i),
            trusted.utility(i)
        );
    }
}

#[test]
fn exact_rational_certifies_the_whole_pipeline() {
    // f64 fractions -> exact fractions -> simulator finish times, end to
    // end within 1e-12 relative error.
    use dls::dlt::exact;
    let model = SystemModel::NcpNfe;
    let params = BusParams::new(Z, W.to_vec()).unwrap();
    let ep = exact::ExactParams::from_f64(Z, &W);
    let af = optimal::fractions(model, &params);
    let ae = exact::fractions(model, &ep);
    let sim = simulate(&SessionSpec::new(model, params, af));
    let exact_mk = exact::optimal_makespan(model, &ep).to_f64();
    assert!((sim.makespan - exact_mk).abs() / exact_mk < 1e-12);
    for (f, e) in sim
        .finish_times()
        .iter()
        .zip(exact::finish_times(model, &ep, &ae))
    {
        assert!((f - e.to_f64()).abs() < 1e-9);
    }
}

#[test]
fn deviants_never_beat_their_compliant_selves_across_models() {
    for model in [SystemModel::NcpFe, SystemModel::NcpNfe] {
        let honest = {
            let mut s = Session::new(model, Z).seed(9);
            for w in W {
                s = s.worker(w);
            }
            s.run().unwrap()
        };
        for (who, b) in [
            (1usize, Behavior::Misreport { factor: 2.0 }),
            (2, Behavior::Slack { factor: 1.5 }),
            (1, Behavior::EquivocateBids { factor: 0.5 }),
            (
                3,
                Behavior::CorruptPayments {
                    target: 0,
                    factor: 0.5,
                },
            ),
        ] {
            let mut s = Session::new(model, Z).seed(9);
            for (i, w) in W.iter().enumerate() {
                s = if i == who {
                    s.worker_with(*w, b)
                } else {
                    s.worker(*w)
                };
            }
            let out = s.run().unwrap();
            assert!(
                out.utility(who) <= honest.utility(who) + 1e-9,
                "{model} {b}: {} > {}",
                out.utility(who),
                honest.utility(who)
            );
        }
    }
}

#[test]
fn ledger_balances_add_up_for_every_status() {
    let scenarios: Vec<Vec<(f64, Behavior)>> = vec![
        vec![(1.0, Behavior::Compliant), (2.0, Behavior::Compliant)],
        vec![
            (1.0, Behavior::Compliant),
            (2.0, Behavior::EquivocateBids { factor: 3.0 }),
            (3.0, Behavior::Compliant),
        ],
        vec![
            (
                1.0,
                Behavior::ShortAllocate {
                    victim: 1,
                    shortfall: 1,
                },
            ),
            (2.0, Behavior::Compliant),
            (3.0, Behavior::Compliant),
        ],
        vec![
            (1.0, Behavior::Compliant),
            (
                2.0,
                Behavior::CorruptPayments {
                    target: 1,
                    factor: 4.0,
                },
            ),
            (3.0, Behavior::Compliant),
        ],
    ];
    for (k, procs) in scenarios.into_iter().enumerate() {
        let mut s = Session::ncp_fe(Z).seed(k as u64);
        for (w, b) in procs {
            s = s.worker_with(w, b);
        }
        let out = s.run().unwrap();
        assert!(
            out.ledger.conservation_error().abs() < 1e-9,
            "scenario {k}: {:?}",
            out.status
        );
        // Every processor's reported utility is consistent with the ledger.
        for (i, p) in out.processors.iter().enumerate() {
            let balance = out
                .ledger
                .balance(&dls::protocol::ledger::Account::Processor(i));
            assert!(
                (p.utility - (balance - p.cost)).abs() < 1e-9,
                "scenario {k} P{}",
                i + 1
            );
        }
    }
}

#[test]
fn signed_messages_travel_the_whole_stack() {
    // A session's message accounting shows signed traffic in every phase.
    let out = Session::ncp_fe(Z)
        .worker(1.0)
        .worker(2.0)
        .worker(3.0)
        .seed(1)
        .run()
        .unwrap();
    let (bids, bid_bytes) = out.messages.category("bid");
    let (grants, grant_bytes) = out.messages.category("grant");
    let (pv, pv_bytes) = out.messages.category("payment-vector");
    assert_eq!(bids, 6); // m(m-1) = 3·2
    assert_eq!(grants, 2); // originator serves the two others
    assert_eq!(pv, 3); // one vector per processor
    assert!(bid_bytes > 0 && grant_bytes > 0 && pv_bytes > 0);
    // Grants dominate byte volume (they carry the signed blocks).
    assert!(grant_bytes > bid_bytes);
}
