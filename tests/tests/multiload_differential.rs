//! Differential tests for the multi-load installment pipeline: a k-load
//! scheduler whose per-load chains are spliced in place must agree
//! **bit-exactly** (every `f64` compared via `to_bits`) with `k`
//! independent from-scratch solves of the same markets, across all three
//! bus models, after update sequences that hit the head slot, the tail
//! slot and the special last links — and the cross-load mechanism on top
//! must keep truthful reporting dominant on a dense misreport grid.
//!
//! Bit-exactness is the design contract inherited from the single-load
//! engine differential suite: each per-load chain evaluates the same
//! expressions in the same order as the from-scratch solver, so IEEE-754
//! determinism makes the results identical; a tolerance would hide a
//! broken splice. The pipelined timeline, which has no closed form, is
//! instead certified against the exact-rational replay of the same
//! recurrence, where f64 tolerance is the honest statement.
//!
//! Workloads come from `dls_bench::workloads::quantized_rates` — the
//! same frozen dyadic generator the multiload benchmark replays.

use dls::dlt::multiload::{
    pipeline_schedule, pipeline_schedule_exact, InstallmentScheduler, LoadSpec,
};
use dls::dlt::{optimal, BusParams, ChainState, ALL_MODELS};
use dls::mechanism::{compute_payments, AgentSpec, MultiLoadEngine, MultiLoadMarket};
use dls_bench::workloads::quantized_rates;

/// The k load specs every test shares: dyadic sizes and intensities.
fn loads(k: usize) -> Vec<LoadSpec> {
    let sizes = quantized_rates(k, 0.5, 2.0, 0x10ad, 64);
    let zs = quantized_rates(k, 0.0625, 0.5, 0xb005, 64);
    sizes
        .iter()
        .zip(&zs)
        .map(|(&s, &z)| LoadSpec::new(s, z))
        .collect()
}

/// Update schedule hitting head, tail, the second-to-last slot (the
/// NCP-NFE special link) and a spread of middle positions.
fn update_schedule(m: usize) -> Vec<(usize, f64)> {
    let rates = quantized_rates(16.max(m), 1.0, 8.0, 0x5eed, 64);
    [0, m - 1, m / 2, m.saturating_sub(2), 1 % m, m / 3, 0, m - 1]
        .into_iter()
        .map(|i| i % m)
        .zip(rates)
        .collect()
}

fn assert_bits_eq(a: &[f64], b: &[f64], ctx: &str) {
    let ab: Vec<u64> = a.iter().map(|x| x.to_bits()).collect();
    let bb: Vec<u64> = b.iter().map(|x| x.to_bits()).collect();
    assert_eq!(ab, bb, "{ctx}: {a:?} vs {b:?}");
}

#[test]
fn spliced_loads_match_k_independent_solves_bitwise() {
    for &model in &ALL_MODELS {
        for m in [2usize, 3, 16, 64] {
            for k in [1usize, 3, 8] {
                let bids = quantized_rates(m, 1.0, 8.0, 42, 64);
                let specs = loads(k);
                let mut sched = InstallmentScheduler::new(model, &bids, &specs).unwrap();
                let mut bids_now = bids.clone();
                let (mut got, mut want) = (Vec::new(), Vec::new());
                for (step, &(i, r)) in update_schedule(m).iter().enumerate() {
                    sched.update_bid(i, r).unwrap();
                    bids_now[i] = r;
                    for (l, spec) in specs.iter().enumerate() {
                        let ctx = format!("{model} m={m} k={k} step={step} load={l}");
                        // k independent from-scratch solves on the final rates.
                        let params = BusParams::new(spec.z, bids_now.clone()).unwrap();
                        sched.fractions_into(l, &mut got).unwrap();
                        optimal::fractions_into(model, &params, &mut want);
                        assert_bits_eq(&got, &want, &ctx);
                        let fresh = ChainState::new(model, &params);
                        assert_eq!(
                            sched.load_makespan(l).unwrap().to_bits(),
                            (spec.size * fresh.optimal_makespan()).to_bits(),
                            "{ctx}: makespan"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn engine_payments_match_scaled_reference_after_head_and_tail_updates() {
    for &model in &ALL_MODELS {
        let m = 16;
        let k = 4;
        let bids = quantized_rates(m, 1.0, 8.0, 7, 64);
        let specs = loads(k);
        let mut engine = MultiLoadEngine::new(model, &bids, &specs).unwrap();
        let mut bids_now = bids.clone();
        // Head, tail and one middle update before the payment query.
        for (i, r) in [(0usize, 2.5), (m - 1, 1.25), (m / 2, 4.0)] {
            engine.submit_bid(i, r).unwrap();
            bids_now[i] = r;
        }
        // Observed rates: every third processor slacks by one quantum.
        let observed: Vec<f64> = bids_now
            .iter()
            .enumerate()
            .map(|(i, &w)| if i % 3 == 1 { w + 1.0 / 64.0 } else { w })
            .collect();
        let mut got = Vec::new();
        for (l, spec) in specs.iter().enumerate() {
            engine.payments_into(l, &observed, &mut got).unwrap();
            let params = BusParams::new(spec.z, bids_now.clone()).unwrap();
            let alloc = optimal::fractions(model, &params);
            let want = compute_payments(model, &params, &alloc, &observed);
            assert_eq!(got.len(), want.len());
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(
                    g.compensation.to_bits(),
                    (spec.size * w.compensation).to_bits(),
                    "{model} load {l} agent {i}: compensation"
                );
                assert_eq!(
                    g.bonus.to_bits(),
                    (spec.size * w.bonus).to_bits(),
                    "{model} load {l} agent {i}: bonus"
                );
            }
        }
    }
}

#[test]
fn truthful_reporting_dominates_on_a_dense_misreport_grid() {
    // A misreport moves the agent's fraction in all k loads at once; the
    // cross-load utility must still peak at the truthful report for
    // every agent, model and misreport factor.
    let factors = [0.5, 0.7, 0.8, 0.9, 0.95, 1.05, 1.1, 1.25, 1.5, 2.0];
    let true_w = quantized_rates(5, 1.0, 8.0, 11, 64);
    let specs = loads(3);
    for &model in &ALL_MODELS {
        let truthful: Vec<AgentSpec> = true_w.iter().map(|&w| AgentSpec::truthful(w)).collect();
        let honest = MultiLoadMarket::new(model, &specs, truthful).unwrap().run().unwrap();
        for victim in 0..true_w.len() {
            let u_honest = honest.utility(victim).unwrap();
            for &factor in &factors {
                let mut agents: Vec<AgentSpec> =
                    true_w.iter().map(|&w| AgentSpec::truthful(w)).collect();
                agents[victim] = AgentSpec::misreporting(true_w[victim], factor);
                let u_lied = MultiLoadMarket::new(model, &specs, agents)
                    .unwrap()
                    .run()
                    .unwrap()
                    .utility(victim)
                    .unwrap();
                assert!(
                    u_honest >= u_lied - 1e-9,
                    "{model} victim {victim} factor {factor}: truthful {u_honest} < misreport {u_lied}"
                );
            }
        }
    }
}

#[test]
fn pipeline_timeline_certified_by_exact_rational_replay() {
    for &model in &ALL_MODELS {
        for m in [2usize, 5, 16] {
            for k in [1usize, 4, 8] {
                let bids = quantized_rates(m, 1.0, 8.0, 3, 64);
                let specs = loads(k);
                let fp = pipeline_schedule(model, &bids, &specs).unwrap();
                let exact = pipeline_schedule_exact(model, &bids, &specs).unwrap();
                let ctx = format!("{model} m={m} k={k}");
                let tol = |x: f64| 1e-12 * x.abs().max(1.0);
                let em = exact.makespan.to_f64();
                assert!((fp.makespan - em).abs() <= tol(em), "{ctx}: {} vs {em}", fp.makespan);
                let es = exact.sequential_makespan.to_f64();
                assert!(
                    (fp.sequential_makespan - es).abs() <= tol(es),
                    "{ctx}: sequential {} vs {es}",
                    fp.sequential_makespan
                );
                assert_eq!(fp.load_finish.len(), exact.load_finish.len(), "{ctx}");
                for (f, e) in fp.load_finish.iter().zip(&exact.load_finish) {
                    let e = e.to_f64();
                    assert!((f - e).abs() <= tol(e), "{ctx}: finish {f} vs {e}");
                }
                // Pipelining never loses to strictly sequential service.
                assert!(
                    fp.makespan <= fp.sequential_makespan + tol(fp.sequential_makespan),
                    "{ctx}: pipelined {} > sequential {}",
                    fp.makespan,
                    fp.sequential_makespan
                );
            }
        }
    }
}

#[test]
fn single_load_pipeline_collapses_to_the_closed_form() {
    // k = 1: the pipelined timeline is exactly the single-load optimal
    // schedule, whose makespan has the closed head/prefix form.
    for &model in &ALL_MODELS {
        for m in [2usize, 7, 32] {
            let bids = quantized_rates(m, 1.0, 8.0, 9, 64);
            let spec = LoadSpec::new(1.5, 0.25);
            let t = pipeline_schedule(model, &bids, &[spec]).unwrap();
            let params = BusParams::new(spec.z, bids.clone()).unwrap();
            let chain = ChainState::new(model, &params);
            let want = spec.size * chain.optimal_makespan();
            assert!(
                (t.makespan - want).abs() <= 1e-12 * want.max(1.0),
                "{model} m={m}: pipeline {} vs closed form {want}",
                t.makespan
            );
        }
    }
}

#[test]
fn protocol_session_paths_agree_and_punish_misreports() {
    use dls::protocol::config::{Behavior, ProcessorConfig};
    use dls::protocol::MultiLoadSession;
    use dls::SystemModel;

    let build = |behavior2: Behavior| {
        MultiLoadSession::builder(SystemModel::NcpFe)
            .processor(ProcessorConfig::new(1.0, Behavior::Compliant))
            .processor(ProcessorConfig::new(2.0, behavior2))
            .processor(ProcessorConfig::new(3.0, Behavior::Compliant))
            .load(0.25, 24)
            .load(0.125, 12)
            .load(0.5, 18)
            .seed(13)
            .build()
            .unwrap()
    };

    // vm and pooled paths agree bit-exactly per load.
    let honest = build(Behavior::Compliant);
    let vm = honest.run_vm();
    let pooled = honest.run_pooled(3);
    assert!(vm.all_completed() && pooled.all_completed());
    for (a, b) in vm.per_load.iter().zip(&pooled.per_load) {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        assert_eq!(a.makespan.map(f64::to_bits), b.makespan.map(f64::to_bits));
        for i in 0..3 {
            assert_eq!(a.utility(i).to_bits(), b.utility(i).to_bits());
        }
    }

    // A misreport in the shared bid vector costs the liar across all
    // three loads end to end (protocol-level dominance, not just the
    // auction-layer grid).
    let lied = build(Behavior::Misreport { factor: 1.5 }).run_vm();
    assert!(lied.all_completed());
    let u_honest = vm.total_utility(1).unwrap();
    let u_lied = lied.total_utility(1).unwrap();
    assert!(
        u_honest >= u_lied - 1e-9,
        "protocol misreport profitable: {u_honest} < {u_lied}"
    );
}
